// Package index implements the STRG-Index of Section 5: a three-level
// tree over decomposed video.
//
//   - The root node holds one record per Background Graph (iD, BG, ptr).
//   - Each cluster node holds the centroid Object Graphs of the clusters
//     sharing that background (iD, OG_clus, ptr).
//   - Each leaf node holds the member OGs of one cluster, keyed by
//     Key = EGED_M(OG_mem, OG_clus) — a metric, so the key supports
//     triangle-inequality pruning.
//
// Construction follows Algorithm 2 (cluster the OGs with EM over the
// non-metric EGED, then insert members sorted by key), node splitting
// follows Section 5.3 (EM with K = 2 adopted when it improves BIC), and
// search follows Algorithm 3 (match the query background by SimGraph,
// descend to the most similar centroid, then k-NN the leaf with key
// pruning).
package index

import (
	"context"
	"fmt"
	"math"
	"sort"

	"strgindex/internal/cluster"
	"strgindex/internal/dist"
	"strgindex/internal/graph"
	"strgindex/internal/parallel"
)

// DistCache is an optional cache of leaf distance evaluations, consulted
// before the lower-bound cascade. Keys are content hashes (dist.
// HashSequence) of the query and the stored sequence; cached values must
// have been produced by this tree's key metric, so a hit returns the
// exact bits an evaluation would. Implementations must be safe for
// concurrent use (leaf scans run on the worker pool) and own their
// invalidation — core's versioned cache bumps a generation on ingest.
type DistCache interface {
	Get(query, seq uint64) (float64, bool)
	Put(query, seq uint64, d float64)
}

// ShardAwareDistCache is an optional DistCache extension for sharded
// trees: PutShard carries the stored record's shard, letting the cache
// stamp each entry with a per-shard generation and invalidate only the
// shard an ingest actually touched instead of wiping the whole warm cache
// on every commit. Searches detect the extension once per query; plain
// DistCache implementations keep working unchanged (their entries behave
// as shard 0).
type ShardAwareDistCache interface {
	DistCache
	PutShard(query, seq uint64, d float64, shard uint32)
}

// Config parameterizes an STRG-Index.
type Config struct {
	// Metric is the leaf key metric — EGED_M in the paper. It must satisfy
	// the metric axioms for key pruning to be sound. Nil means EGED_M with
	// the zero gap.
	Metric dist.Metric
	// Cascade supplies the key metric's lower-bound cascade (admissible
	// bounds + early-abandoning kernel) for filter-and-refine leaf scans.
	// Nil means: the default cascade for the default metric (EGED_M, zero
	// gap) when Metric is nil, or exact-only evaluation when a custom
	// Metric is set (its bounds are unknown). When Cascade is set and
	// Metric is nil, the cascade's metric becomes the key metric. Results
	// are byte-identical with the cascade on or off: bounds are
	// admissible and abandonment only fires strictly above the pruning
	// threshold.
	Cascade dist.Cascade
	// DisableCascade forces exact-only evaluation even for the default
	// metric (ablation/benchmark knob).
	DisableCascade bool
	// Cache is an optional distance cache for leaf scans. Nil disables
	// caching. The cache must be scoped to this tree's key metric.
	Cache DistCache
	// ClusterDistance is the (possibly non-metric) distance used to build
	// and choose clusters — the non-metric EGED in the paper. Nil means
	// dist.EGED.
	ClusterDistance dist.Metric
	// NumClusters fixes K per background when positive; zero selects K by
	// BIC over 1..MaxClusters (Section 4.2).
	NumClusters int
	// MaxClusters bounds the BIC scan. Zero means 15, the paper's Figure 8
	// range.
	MaxClusters int
	// MaxLeafEntries is the leaf occupancy that triggers a split check
	// (Section 5.3). Zero means 32.
	MaxLeafEntries int
	// BGSimThreshold is the minimum SimGraph at which an incoming
	// background is considered the same as a stored one, sharing its root
	// record. Zero means 0.75.
	BGSimThreshold float64
	// Tol is the matching tolerance for background comparison.
	Tol graph.Tolerance
	// Seed drives clustering initialization.
	Seed int64
	// EMMaxIter bounds clustering iterations. Zero means 50.
	EMMaxIter int
	// Shards is the number of copy-on-write partitions a Sharded index
	// splits its roots across (clamped to [1, MaxShards]; plain Trees
	// ignore it). Query results are identical at every setting — sharding
	// only changes which snapshot a root lives in.
	Shards int
	// AsyncSplit defers Section 5.3 split evaluations from the Sharded
	// ingest path to background goroutines (plain Trees ignore it). Splits
	// still publish through the writer lock; only the EM fits move off the
	// commit path, so ingest latency stops paying for them.
	AsyncSplit bool
	// DisableColumnar turns off the columnar execution layer: leaf records
	// then keep only their []Vec sequences (no flattened float64 block, no
	// quantized summary codes) and searches run the per-pair DP kernel
	// instead of the batched columnar one. The columnar kernels are
	// bit-identical to the pointer-chasing ones and the quantized tier
	// only pre-fires prunes the envelope bound would make anyway, so
	// results AND SearchStats are byte-identical with the layer on or off
	// — this is an ablation/benchmark knob, not a semantic one.
	DisableColumnar bool
	// SearchBatch is the number of leaves KNNExact scans per round before
	// merging worker-local heaps and refreshing the shared pruning
	// threshold. 0 means one leaf per worker (the default round size).
	// Larger batches synchronize less but prune against a staler
	// threshold; results are identical at every setting.
	SearchBatch int
	// Concurrency bounds the worker pool used throughout the index: the
	// pairwise matrices of EM clustering during construction and splits,
	// the centroid descent of insertion and search, and the per-leaf scans
	// of KNNExact and Range. 0 means one worker per CPU; 1 reproduces the
	// fully sequential paper evaluation. Results are identical at every
	// setting — parallelism only reschedules the distance evaluations.
	Concurrency int
}

func (c Config) withDefaults() Config {
	switch {
	case c.DisableCascade:
		if c.Metric == nil {
			if c.Cascade != nil {
				c.Metric = c.Cascade.Metric
			} else {
				c.Metric = dist.EGEDMZero
			}
		}
		c.Cascade = dist.ExactOnly(c.Metric)
	case c.Cascade != nil:
		if c.Metric == nil {
			c.Metric = c.Cascade.Metric
		}
	case c.Metric == nil:
		c.Metric = dist.EGEDMZero
		c.Cascade = dist.EGEDMCascade(nil)
	default:
		// A custom metric without a declared cascade: bounds unknown, so
		// every candidate is refined exactly (pre-cascade behavior).
		c.Cascade = dist.ExactOnly(c.Metric)
	}
	if c.ClusterDistance == nil {
		c.ClusterDistance = dist.EGED
	}
	if c.MaxClusters <= 0 {
		c.MaxClusters = 15
	}
	if c.MaxLeafEntries <= 0 {
		c.MaxLeafEntries = 32
	}
	if c.BGSimThreshold <= 0 {
		c.BGSimThreshold = 0.75
	}
	if c.Tol == (graph.Tolerance{}) {
		c.Tol = graph.DefaultTolerance()
	}
	if c.EMMaxIter <= 0 {
		c.EMMaxIter = 50
	}
	return c
}

// Item is one Object Graph to index: its attribute sequence plus the
// payload the leaf record points at (the video clip reference).
type Item[P any] struct {
	Seq     dist.Sequence
	Payload P
}

// Result is one search hit.
type Result[P any] struct {
	Payload  P
	Distance float64
}

// leafRecord is one record of a leaf node: (Key, OG_mem, ptr), extended
// with the lower-bound cascade's per-sequence precomputation (gap sum and
// envelope) and the sequence's content hash (distance-cache identity).
// Both are derived from seq at insert/restore time, never serialized.
type leafRecord[P any] struct {
	key     float64
	seq     dist.Sequence
	payload P
	sum     dist.Summary
	hash    uint64
	// col is the columnar form of seq — the same float64s flattened into
	// one contiguous block for the batched DP kernel. When the columnar
	// layer is on, seq's vectors are views into col's buffer, so the data
	// exists exactly once; when DisableColumnar is set col stays zero.
	col dist.Block
	// qc is the record's quantized-summary code on its cluster's grid
	// (Valid=false when the record predates the grid, falls outside it,
	// or the columnar layer is off).
	qc dist.QuantCode
	// shard tags the record with its tree's shard index (0 for a plain
	// tree) so shard-aware distance caches can scope invalidation.
	shard uint32
}

// newLeafRecord builds a leaf record for seq under centroid: the key is
// the metric distance to the centroid, the summary and hash are the
// cascade/cache precomputations. With the columnar layer on, the sequence
// is flattened once here and re-exposed as views into the block, so both
// access paths share one copy of the floats (and identical bits — every
// derived value is computed from the same data either way).
func (t *Tree[P]) newLeafRecord(centroid, seq dist.Sequence, payload P) leafRecord[P] {
	var col dist.Block
	if !t.cfg.DisableColumnar {
		col = dist.FromSequence(seq)
		seq = col.Sequence()
	}
	return leafRecord[P]{
		key:     t.cfg.Metric(seq, centroid),
		seq:     seq,
		payload: payload,
		sum:     t.cfg.Cascade.Summarize(seq),
		hash:    dist.HashSequence(seq),
		col:     col,
		shard:   t.shardTag,
	}
}

// clusterRecord is one record of a cluster node: (iD_clus, OG_clus, ptr to
// leaf). Leaf entries are kept sorted by key.
type clusterRecord[P any] struct {
	id       int
	centroid dist.Sequence
	leaf     []leafRecord[P]
	// qgrid is the leaf's shared 8-bit quantization grid (quant.go),
	// fitted whenever the membership is rebuilt wholesale (bootstrap,
	// split, restore) and left fixed across incremental inserts — a
	// record that does not fit the fixed grid simply carries an invalid
	// code and skips the tier. Zero (not Ok) when columnar is off.
	qgrid dist.QuantGrid
	// splitChecked is the leaf size at which the last BIC evaluation
	// declined to split, 0 if never evaluated (or since invalidated by a
	// delete or an adopted split). Cluster quality cannot have degraded
	// while the membership is unchanged, so an occupancy check at the same
	// size skips the two EM refits — the incremental half of Section 5.3.
	// Advisory state: searches never read it, writers are serialized, so
	// the copy-on-write path may update it in place on a shared record.
	splitChecked int
}

func (c *clusterRecord[P]) maxKey() float64 {
	if len(c.leaf) == 0 {
		return 0
	}
	return c.leaf[len(c.leaf)-1].key
}

// rootRecord is one record of the root node: (iD_root, BG_r, ptr to a
// cluster node).
type rootRecord[P any] struct {
	id       int
	bg       *graph.Graph
	clusters []*clusterRecord[P]
}

// Tree is an STRG-Index. Not safe for concurrent mutation; Sharded wraps
// trees in copy-on-write snapshots for concurrent readers.
type Tree[P any] struct {
	cfg     Config
	matcher *graph.Matcher
	roots   []*rootRecord[P]
	size    int
	nextCl  int
	// shardTag is this tree's index within a Sharded wrapper (0 for a
	// plain tree); stamped into every leaf record at insert/restore time.
	shardTag uint32
}

// clone returns a shallow copy sharing every root record — the starting
// point of a copy-on-write transaction, which then privatizes only the
// nodes it touches via txn.
func (t *Tree[P]) clone() *Tree[P] {
	c := *t
	c.roots = append([]*rootRecord[P](nil), t.roots...)
	return &c
}

// New creates an empty STRG-Index.
func New[P any](cfg Config) *Tree[P] {
	cfg = cfg.withDefaults()
	return &Tree[P]{cfg: cfg, matcher: graph.NewMatcher(cfg.Tol)}
}

// Len returns the number of indexed OGs.
func (t *Tree[P]) Len() int { return t.size }

// NumRoots returns the number of root records (distinct backgrounds).
func (t *Tree[P]) NumRoots() int { return len(t.roots) }

// NumClusters returns the total number of cluster records.
func (t *Tree[P]) NumClusters() int {
	n := 0
	for _, r := range t.roots {
		n += len(r.clusters)
	}
	return n
}

// txn tracks one mutation's copy-on-write state. A plain tree mutates in
// place (cow false: root/cluster return the nodes as-is); a Sharded write
// runs on a fresh clone with cow true, privatizing each touched node once
// so published snapshots stay immutable. With deferSplit set, occupancy
// checks collect split candidates for the asynchronous evaluator instead
// of fitting EM inline.
type txn[P any] struct {
	t   *Tree[P]
	cow bool
	// owned marks nodes this transaction created or already privatized.
	owned map[any]bool
	// rootIdx is the root the current insert batch targets (for split
	// candidates).
	rootIdx    int
	deferSplit bool
	splitCands []splitCand
}

// splitCand identifies an oversized cluster awaiting a deferred BIC
// evaluation.
type splitCand struct {
	rootIdx   int
	clusterID int
}

func (x *txn[P]) own(node any) {
	if x.cow {
		if x.owned == nil {
			x.owned = make(map[any]bool)
		}
		x.owned[node] = true
	}
}

// root returns the root at index i, privatized if this is a COW
// transaction: the copy shares cluster pointers until cluster() privatizes
// them individually.
func (x *txn[P]) root(i int) *rootRecord[P] {
	r := x.t.roots[i]
	if !x.cow || x.owned[r] {
		return r
	}
	c := *r
	c.clusters = append([]*clusterRecord[P](nil), r.clusters...)
	x.t.roots[i] = &c
	x.own(&c)
	return &c
}

// cluster returns root's ci-th cluster, privatized (leaf slice copied) if
// this is a COW transaction. root must itself already be private.
func (x *txn[P]) cluster(root *rootRecord[P], ci int) *clusterRecord[P] {
	cl := root.clusters[ci]
	if !x.cow || x.owned[cl] {
		return cl
	}
	c := *cl
	c.leaf = append([]leafRecord[P](nil), cl.leaf...)
	root.clusters[ci] = &c
	x.own(&c)
	return &c
}

// AddSegment indexes one decomposed segment: its background graph plus its
// OGs (Algorithm 2). If bg matches an existing root record by SimGraph the
// OGs join that root's cluster node; otherwise a new root record is
// created. bg may be nil for pure trajectory workloads (the synthetic
// experiments), in which case all items share a single nil-background
// root.
func (t *Tree[P]) AddSegment(bg *graph.Graph, items []Item[P]) error {
	x := &txn[P]{t: t}
	x.rootIdx = t.findOrCreateRoot(bg)
	if len(items) == 0 {
		return nil
	}
	return t.addItemsAt(x, x.rootIdx, items)
}

// addItemsAt inserts items into the root at index ri under the given
// transaction: EM bootstrap for an empty root, per-item centroid routing
// otherwise.
func (t *Tree[P]) addItemsAt(x *txn[P], ri int, items []Item[P]) error {
	root := x.root(ri)
	if len(root.clusters) == 0 {
		return t.buildClusters(x, root, items)
	}
	// With deferred splits the cluster set is frozen for the whole batch,
	// so every item's routing can be computed up front and each touched
	// leaf rebuilt in one merge — O(n log n) against the O(n²) shifting
	// of per-item sorted inserts, the difference between minutes and
	// hours at million-OG batches. With inline splits a mid-batch split
	// changes the routing of later items, so the per-item path stands.
	if x.deferSplit && len(items) > 1 {
		return t.bulkInsert(x, root, items)
	}
	for _, it := range items {
		if err := t.insertIntoRoot(x, root, it); err != nil {
			return err
		}
	}
	return nil
}

// bulkInsert routes a whole batch against the frozen cluster set and
// merges each cluster's newcomers into its leaf in one pass. The final
// leaf contents are byte-identical to per-item insertIntoRoot calls:
// routing sees the same centroids (no inline splits), records are keyed
// and quant-encoded identically, and sortedLeaf/mergeLeaf replicate
// insertSorted's arrival-tie order. Only the split-candidate list
// differs — one candidate per touched oversized cluster instead of one
// per insert — which the asynchronous evaluator treats identically
// (duplicates were already collapsed by its revalidation).
func (t *Tree[P]) bulkInsert(x *txn[P], root *rootRecord[P], items []Item[P]) error {
	buckets := make([][]int, len(root.clusters))
	for i, it := range items {
		ci := argminCluster(root.clusters, it.Seq, t.cfg.ClusterDistance, t.cfg.Concurrency)
		if ci < 0 {
			return fmt.Errorf("index: root %d has no clusters", root.id)
		}
		buckets[ci] = append(buckets[ci], i)
	}
	for ci, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		cl := x.cluster(root, ci)
		recs := make([]leafRecord[P], len(bucket))
		for bi, i := range bucket {
			rec := t.newLeafRecord(cl.centroid, items[i].Seq, items[i].Payload)
			// Same grid policy as insertIntoRoot: encode against the
			// leaf's existing grid, which stays fixed across inserts.
			rec.qc = cl.qgrid.Encode(rec.sum.Box)
			recs[bi] = rec
		}
		cl.leaf = mergeLeaf(cl.leaf, sortedLeaf(recs))
		t.size += len(bucket)
		t.maybeSplit(x, root, cl)
	}
	return nil
}

// Insert adds a single OG, routing by background like AddSegment.
func (t *Tree[P]) Insert(bg *graph.Graph, seq dist.Sequence, payload P) error {
	return t.AddSegment(bg, []Item[P]{{Seq: seq, Payload: payload}})
}

// findOrCreateRoot locates the root record whose background is most
// similar to bg (SimGraph at least the threshold) or appends a new one,
// returning its index.
func (t *Tree[P]) findOrCreateRoot(bg *graph.Graph) int {
	if bg == nil {
		for i, r := range t.roots {
			if r.bg == nil {
				return i
			}
		}
	} else {
		best := -1
		bestSim := 0.0
		for i, r := range t.roots {
			if r.bg == nil {
				continue
			}
			if sim := t.matcher.SimGraph(bg, r.bg); sim > bestSim {
				best, bestSim = i, sim
			}
		}
		if best >= 0 && bestSim >= t.cfg.BGSimThreshold {
			return best
		}
	}
	r := &rootRecord[P]{id: len(t.roots), bg: bg}
	t.roots = append(t.roots, r)
	return len(t.roots) - 1
}

// clusterCfg assembles the clustering configuration shared by bootstrap,
// inline splits and deferred split evaluations.
func (t *Tree[P]) clusterCfg() cluster.Config {
	return cluster.Config{
		MaxIter:     t.cfg.EMMaxIter,
		Seed:        t.cfg.Seed,
		Distance:    t.cfg.ClusterDistance,
		Concurrency: t.cfg.Concurrency,
	}
}

// buildClusters bootstraps a root's cluster node from its first batch of
// items: EM clustering with the non-metric EGED, K by BIC unless fixed.
// root must be owned by the transaction.
func (t *Tree[P]) buildClusters(x *txn[P], root *rootRecord[P], items []Item[P]) error {
	seqs := make([]dist.Sequence, len(items))
	for i, it := range items {
		seqs[i] = it.Seq
	}
	ccfg := t.clusterCfg()
	var res *cluster.Result
	var err error
	switch {
	case t.cfg.NumClusters > 0:
		ccfg.K = min(t.cfg.NumClusters, len(items))
		res, err = cluster.EM(seqs, ccfg)
	default:
		var scan *cluster.KScan
		scan, err = cluster.OptimalK(seqs, 1, min(t.cfg.MaxClusters, len(items)), ccfg)
		if err == nil {
			res = scan.Results[scan.BestK-1]
		}
	}
	if err != nil {
		return fmt.Errorf("index: clustering segment: %w", err)
	}
	for k := 0; k < res.K; k++ {
		members := res.Members(k)
		if len(members) == 0 {
			continue
		}
		cl := &clusterRecord[P]{id: t.nextCl, centroid: res.Centroids[k]}
		t.nextCl++
		x.own(cl)
		recs := make([]leafRecord[P], len(members))
		for mi, j := range members {
			recs[mi] = t.newLeafRecord(cl.centroid, items[j].Seq, items[j].Payload)
		}
		cl.leaf = sortedLeaf(recs)
		t.refitQuant(cl)
		root.clusters = append(root.clusters, cl)
		t.size += len(members)
	}
	// Respect the occupancy rule immediately. The range snapshots the
	// slice header, so clusters appended by adopted splits are not
	// re-examined — the original behavior.
	for _, cl := range root.clusters {
		t.maybeSplit(x, root, cl)
	}
	return nil
}

// refitQuant fits cl's quantization grid to its current membership and
// re-encodes every record's code. Called wherever the membership is
// rebuilt wholesale (bootstrap, adopted split, snapshot restore); cl must
// be owned by the transaction. A no-op when the columnar layer is off.
func (t *Tree[P]) refitQuant(cl *clusterRecord[P]) {
	if t.cfg.DisableColumnar {
		return
	}
	boxes := make([]dist.Box, len(cl.leaf))
	for i := range cl.leaf {
		boxes[i] = cl.leaf[i].sum.Box
	}
	cl.qgrid = dist.BuildQuantGrid(boxes)
	for i := range cl.leaf {
		cl.leaf[i].qc = cl.qgrid.Encode(cl.leaf[i].sum.Box)
	}
}

// insertIntoRoot routes one item to the most similar centroid (non-metric
// EGED, Algorithm 3's descent) and inserts it into that leaf by key. root
// must be owned by the transaction.
func (t *Tree[P]) insertIntoRoot(x *txn[P], root *rootRecord[P], it Item[P]) error {
	ci := argminCluster(root.clusters, it.Seq, t.cfg.ClusterDistance, t.cfg.Concurrency)
	if ci < 0 {
		return fmt.Errorf("index: root %d has no clusters", root.id)
	}
	cl := x.cluster(root, ci)
	rec := t.newLeafRecord(cl.centroid, it.Seq, it.Payload)
	// Encode against the leaf's existing grid: the grid stays fixed across
	// incremental inserts, and a record outside its range just carries an
	// invalid code (falling through to the envelope bound).
	rec.qc = cl.qgrid.Encode(rec.sum.Box)
	cl.insertSorted(rec)
	t.size++
	t.maybeSplit(x, root, cl)
	return nil
}

// argminCluster evaluates the distance from seq to every centroid across
// the worker pool and returns the index of the first minimum — the same
// winner the sequential strict-less-than scan picks, because the reduction
// runs in slice order after the values land.
func argminCluster[P any](cls []*clusterRecord[P], seq dist.Sequence, m dist.Metric, workers int) int {
	best, err := argminClusterCtx(context.Background(), cls, seq, m, workers)
	must(err)
	return best
}

// argminClusterCtx is argminCluster with cancellation: a done ctx stops
// the pool from claiming further centroid evaluations and surfaces
// ctx.Err().
func argminClusterCtx[P any](ctx context.Context, cls []*clusterRecord[P], seq dist.Sequence, m dist.Metric, workers int) (int, error) {
	if len(cls) == 0 {
		return -1, nil
	}
	ds, err := parallel.MapCtx(ctx, workers, len(cls), func(i int) (float64, error) {
		return m(seq, cls[i].centroid), nil
	})
	if err != nil {
		return -1, err
	}
	best, bestD := -1, math.Inf(1)
	for i, d := range ds {
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best, nil
}

// must re-panics pool errors from task functions that never return errors
// themselves: the only possible failure is a recovered worker panic, which
// the sequential code path would have let escape.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

func (c *clusterRecord[P]) insertSorted(rec leafRecord[P]) {
	i := sort.Search(len(c.leaf), func(i int) bool { return c.leaf[i].key >= rec.key })
	c.leaf = append(c.leaf, leafRecord[P]{})
	copy(c.leaf[i+1:], c.leaf[i:])
	c.leaf[i] = rec
}

// sortedLeaf orders a batch of records exactly as sequential insertSorted
// arrivals would have left them — ascending key, and among equal keys the
// later arrival first (insertSorted places a new record before existing
// equal keys) — in O(n log n) instead of the O(n²) shifting of one
// insertSorted call per record. recs must be in arrival order; the slice
// is consumed.
func sortedLeaf[P any](recs []leafRecord[P]) []leafRecord[P] {
	ord := make([]int, len(recs))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		ra, rb := ord[a], ord[b]
		if recs[ra].key != recs[rb].key {
			return recs[ra].key < recs[rb].key
		}
		return ra > rb
	})
	out := make([]leafRecord[P], len(recs))
	for i, j := range ord {
		out[i] = recs[j]
	}
	return out
}

// mergeLeaf merges a sorted batch (sortedLeaf order) into a sorted leaf,
// placing a newcomer before any existing record of equal key — the same
// final order one insertSorted call per newcomer would produce, in one
// linear pass.
func mergeLeaf[P any](old, recs []leafRecord[P]) []leafRecord[P] {
	merged := make([]leafRecord[P], 0, len(old)+len(recs))
	i, j := 0, 0
	for i < len(old) && j < len(recs) {
		if recs[j].key <= old[i].key {
			merged = append(merged, recs[j])
			j++
		} else {
			merged = append(merged, old[i])
			i++
		}
	}
	merged = append(merged, old[i:]...)
	return append(merged, recs[j:]...)
}

// maybeSplit applies Section 5.3: when a leaf exceeds MaxLeafEntries, EM
// with K = 2 is fitted to its members and adopted if it improves BIC over
// the single-cluster model. A declined verdict is remembered at the
// current leaf size (splitChecked), so re-checks at an unchanged
// membership skip the refits. With deferSplit set, the transaction records
// the cluster for the asynchronous evaluator instead of fitting inline.
// cl must be owned by the transaction.
func (t *Tree[P]) maybeSplit(x *txn[P], root *rootRecord[P], cl *clusterRecord[P]) {
	if len(cl.leaf) <= t.cfg.MaxLeafEntries || len(cl.leaf) == cl.splitChecked {
		return
	}
	if x.deferSplit {
		x.splitCands = append(x.splitCands, splitCand{rootIdx: x.rootIdx, clusterID: cl.id})
		return
	}
	seqs := make([]dist.Sequence, len(cl.leaf))
	for i, rec := range cl.leaf {
		seqs[i] = rec.seq
	}
	dec, err := cluster.SplitEval(seqs, t.clusterCfg())
	splitEvals.Inc()
	if err != nil {
		return // splitting is an optimization; never fail an insert over it
	}
	if !dec.Adopt || !t.applySplit(root, cl, dec.Two) {
		cl.splitChecked = len(cl.leaf)
		return
	}
	splitsInline.Inc()
}

// applySplit installs an adopted two-component fit: cl keeps component 0
// (re-centroided, members re-keyed), a new cluster record takes component
// 1, appended to the root. It reports false — leaving the tree unchanged —
// when either membership is empty. root and cl must be owned by the
// transaction.
func (t *Tree[P]) applySplit(root *rootRecord[P], cl *clusterRecord[P], two *cluster.Result) bool {
	mem0, mem1 := two.Members(0), two.Members(1)
	if len(mem0) == 0 || len(mem1) == 0 {
		return false
	}
	records := cl.leaf
	newCl := &clusterRecord[P]{id: t.nextCl, centroid: two.Centroids[1]}
	t.nextCl++
	cl.centroid = two.Centroids[0]
	cl.splitChecked = 0
	rekey := func(members []int, centroid dist.Sequence) []leafRecord[P] {
		recs := make([]leafRecord[P], len(members))
		for mi, j := range members {
			// Re-key against the new centroid, but keep the record's
			// summary and hash: both depend only on the sequence, not the
			// cluster.
			rec := records[j]
			rec.key = t.cfg.Metric(rec.seq, centroid)
			recs[mi] = rec
		}
		return sortedLeaf(recs)
	}
	cl.leaf = rekey(mem0, cl.centroid)
	newCl.leaf = rekey(mem1, newCl.centroid)
	// Both memberships changed wholesale; give each leaf a fresh grid.
	t.refitQuant(cl)
	t.refitQuant(newCl)
	root.clusters = append(root.clusters, newCl)
	return true
}

// MemoryBytes evaluates Equation 10: Σ size(OG_mem) + Σ size(OG_clus) +
// size(BG) — counting each member sequence, each centroid sequence and
// each background graph once.
func (t *Tree[P]) MemoryBytes() int {
	total := 0
	for _, r := range t.roots {
		if r.bg != nil {
			total += r.bg.MemoryBytes()
		}
		for _, cl := range r.clusters {
			total += seqBytes(cl.centroid)
			for _, rec := range cl.leaf {
				total += seqBytes(rec.seq) + 8 + 8 // key + ptr
			}
		}
	}
	return total
}

func seqBytes(s dist.Sequence) int {
	if len(s) == 0 {
		return 0
	}
	return len(s) * s.Dim() * 8
}

// Delete removes the first indexed record whose sequence equals seq (under
// the key metric: distance 0) and whose payload satisfies pred. A nil pred
// matches any payload. It reports whether a record was removed. Cluster
// records whose leaf empties are dropped; the root record stays (its
// background may still route future segments).
func (t *Tree[P]) Delete(seq dist.Sequence, pred func(P) bool) bool {
	x := &txn[P]{t: t}
	for ri := range t.roots {
		if t.deleteFromRoot(x, ri, seq, pred) {
			return true
		}
	}
	return false
}

// deleteFromRoot is Delete scoped to one root. Under a COW transaction the
// root and cluster are privatized only once a matching record is found, so
// a miss leaves the clone sharing every node.
func (t *Tree[P]) deleteFromRoot(x *txn[P], ri int, seq dist.Sequence, pred func(P) bool) bool {
	r := t.roots[ri]
	for ci, cl := range r.clusters {
		key := t.cfg.Metric(seq, cl.centroid)
		i := sort.Search(len(cl.leaf), func(i int) bool { return cl.leaf[i].key >= key-1e-9 })
		for ; i < len(cl.leaf) && cl.leaf[i].key <= key+1e-9; i++ {
			rec := cl.leaf[i]
			if t.cfg.Metric(seq, rec.seq) > 1e-9 {
				continue
			}
			if pred != nil && !pred(rec.payload) {
				continue
			}
			root := x.root(ri)
			cl = x.cluster(root, ci)
			cl.leaf = append(cl.leaf[:i], cl.leaf[i+1:]...)
			// The membership changed without growing: a future occupancy
			// check at a previously-declined size must re-evaluate.
			cl.splitChecked = 0
			t.size--
			if len(cl.leaf) == 0 {
				root.clusters = append(root.clusters[:ci], root.clusters[ci+1:]...)
			}
			return true
		}
	}
	return false
}

// Items returns every indexed item (sequence and payload), ordered by
// root, cluster and key. The slices share storage with the tree; callers
// must not mutate the sequences.
func (t *Tree[P]) Items() []Item[P] {
	out := make([]Item[P], 0, t.size)
	for _, r := range t.roots {
		for _, cl := range r.clusters {
			for _, rec := range cl.leaf {
				out = append(out, Item[P]{Seq: rec.seq, Payload: rec.payload})
			}
		}
	}
	return out
}

// CheckInvariants verifies leaf key order, key correctness and — with the
// columnar layer on — that every record's column block mirrors its
// sequence bit-for-bit and every valid quant code brackets the record's
// envelope (the admissibility precondition). Intended for tests.
func (t *Tree[P]) CheckInvariants() error {
	for _, r := range t.roots {
		for _, cl := range r.clusters {
			for i, rec := range cl.leaf {
				if i > 0 && rec.key < cl.leaf[i-1].key {
					return fmt.Errorf("index: cluster %d keys out of order at %d", cl.id, i)
				}
				if want := t.cfg.Metric(rec.seq, cl.centroid); math.Abs(want-rec.key) > 1e-9 {
					return fmt.Errorf("index: cluster %d record %d key %v != distance %v", cl.id, i, rec.key, want)
				}
				if t.cfg.DisableColumnar {
					continue
				}
				if rec.col.Len() != len(rec.seq) {
					return fmt.Errorf("index: cluster %d record %d column block has %d rows, sequence %d", cl.id, i, rec.col.Len(), len(rec.seq))
				}
				for si, v := range rec.seq {
					row := rec.col.Row(si)
					for k := range v {
						if math.Float64bits(v[k]) != math.Float64bits(row[k]) {
							return fmt.Errorf("index: cluster %d record %d sample %d diverges from its column block", cl.id, i, si)
						}
					}
				}
				if rec.qc.Valid {
					if !cl.qgrid.Ok {
						return fmt.Errorf("index: cluster %d record %d has a quant code but the leaf has no grid", cl.id, i)
					}
					b := rec.sum.Box
					if lo := cl.qgrid.Dequant(rec.qc.Lo); !(lo <= b.Min[cl.qgrid.Axis]) {
						return fmt.Errorf("index: cluster %d record %d quant low edge %v above box min %v", cl.id, i, lo, b.Min[cl.qgrid.Axis])
					}
					if hi := cl.qgrid.Dequant(rec.qc.Hi); !(hi >= b.Max[cl.qgrid.Axis]) {
						return fmt.Errorf("index: cluster %d record %d quant high edge %v below box max %v", cl.id, i, hi, b.Max[cl.qgrid.Axis])
					}
				}
			}
		}
	}
	return nil
}
