package dist

import "math"

// This file holds the wider trajectory-distance family surrounding the
// paper: LCSS with a time window (Vlachos, Gunopulos, Kollios — the noise
// model of Section 6.1 comes from the same paper), EDR (Chen's Edit
// Distance on Real sequences) and the discrete Fréchet distance. They are
// baselines and ablation material, not used by the index itself.

// LCSSLength is the windowed Longest Common SubSequence of Vlachos et al.:
// samples a[i] and b[j] may match only when |i − j| <= delta and their
// distance is at most eps. delta < 0 disables the window (plain LCS).
func LCSSLength(a, b Sequence, eps float64, delta int) int {
	m, n := len(a), len(b)
	if m == 0 || n == 0 {
		return 0
	}
	sc := getScratch()
	defer putScratch(sc)
	prev, cur := sc.intRows(n + 1)
	for j := 0; j <= n; j++ {
		prev[j], cur[j] = 0, 0
	}
	epsSq := math.Inf(-1)
	if eps >= 0 {
		epsSq = eps * eps
	}
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			inWindow := delta < 0 || abs(i-j) <= delta
			if inWindow && NormSq(a[i-1], b[j-1]) <= epsSq {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
		for k := range cur {
			cur[k] = 0
		}
	}
	return prev[n]
}

// LCSSDist converts windowed LCSS into a dissimilarity in [0, 1].
func LCSSDist(a, b Sequence, eps float64, delta int) float64 {
	m, n := len(a), len(b)
	if m == 0 && n == 0 {
		return 0
	}
	if m == 0 || n == 0 {
		return 1
	}
	minLen := m
	if n < minLen {
		minLen = n
	}
	return 1 - float64(LCSSLength(a, b, eps, delta))/float64(minLen)
}

// LCSSMetric returns LCSSDist as a Metric.
func LCSSMetric(eps float64, delta int) Metric {
	return func(a, b Sequence) float64 { return LCSSDist(a, b, eps, delta) }
}

// EDR is Chen's Edit Distance on Real sequence: unit-cost edit distance
// where two samples match (cost 0) when within eps, substitution costs 1,
// and insertions/deletions cost 1. Robust to noise; not a metric.
func EDR(a, b Sequence, eps float64) int {
	return EditDistance(a, b, eps)
}

// EDRMetric returns EDR normalized by the longer length, as a Metric in
// [0, 1].
func EDRMetric(eps float64) Metric {
	return func(a, b Sequence) float64 {
		m, n := len(a), len(b)
		longest := m
		if n > longest {
			longest = n
		}
		if longest == 0 {
			return 0
		}
		return float64(EDR(a, b, eps)) / float64(longest)
	}
}

// Frechet is the discrete Fréchet distance (the "dog leash" distance over
// sampled curves): the minimax coupling cost. It is a metric on sequences
// up to reparameterization and very sensitive to single outliers — a
// useful contrast to EGED in the ablations.
func Frechet(a, b Sequence) float64 {
	m, n := len(a), len(b)
	if m == 0 && n == 0 {
		return 0
	}
	if m == 0 || n == 0 {
		return math.Inf(1)
	}
	sc := getScratch()
	defer putScratch(sc)
	prev, cur := sc.floatRows(n)
	for j := 0; j < n; j++ {
		d := Norm(a[0], b[j])
		if j == 0 {
			prev[0] = d
		} else {
			prev[j] = math.Max(prev[j-1], d)
		}
	}
	for i := 1; i < m; i++ {
		for j := 0; j < n; j++ {
			d := Norm(a[i], b[j])
			switch {
			case j == 0:
				cur[0] = math.Max(prev[0], d)
			default:
				best := math.Min(prev[j], math.Min(prev[j-1], cur[j-1]))
				cur[j] = math.Max(best, d)
			}
		}
		prev, cur = cur, prev
	}
	return prev[n-1]
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
