package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// seq1 builds a 1-D sequence from scalars.
func seq1(vals ...float64) Sequence {
	s := make(Sequence, len(vals))
	for i, v := range vals {
		s[i] = Vec{v}
	}
	return s
}

// seq2 builds a 2-D sequence from (x, y) pairs.
func seq2(pairs ...[2]float64) Sequence {
	s := make(Sequence, len(pairs))
	for i, p := range pairs {
		s[i] = Vec{p[0], p[1]}
	}
	return s
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNorm(t *testing.T) {
	tests := []struct {
		name string
		a, b Vec
		want float64
	}{
		{"1-D", Vec{3}, Vec{7}, 4},
		{"2-D", Vec{0, 0}, Vec{3, 4}, 5},
		{"identical", Vec{1, 2, 3}, Vec{1, 2, 3}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Norm(tt.a, tt.b); !almostEq(got, tt.want) {
				t.Errorf("Norm = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestNormPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Norm with mismatched dims did not panic")
		}
	}()
	Norm(Vec{1}, Vec{1, 2})
}

func TestEGEDMPaperExample(t *testing.T) {
	// Section 3.1: OGr = {0}, OGs = {1,1}, OGt = {2,2,3} with g = 0:
	// EGED_M(r,t) = 7, EGED_M(r,s) = 2, EGED_M(s,t) = 5 and 7 <= 2 + 5.
	r := seq1(0)
	s := seq1(1, 1)
	tt := seq1(2, 2, 3)
	if got := EGEDM(r, tt, nil); !almostEq(got, 7) {
		t.Errorf("EGEDM(r, t) = %v, want 7", got)
	}
	if got := EGEDM(r, s, nil); !almostEq(got, 2) {
		t.Errorf("EGEDM(r, s) = %v, want 2", got)
	}
	if got := EGEDM(s, tt, nil); !almostEq(got, 5) {
		t.Errorf("EGEDM(s, t) = %v, want 5", got)
	}
}

func TestEGEDIdentity(t *testing.T) {
	for _, s := range []Sequence{seq1(1), seq1(3, 1, 4, 1, 5), seq2([2]float64{1, 2}, [2]float64{3, 4})} {
		if got := EGED(s, s); !almostEq(got, 0) {
			t.Errorf("EGED(s, s) = %v, want 0", got)
		}
		if got := EGEDM(s, s, nil); !almostEq(got, 0) {
			t.Errorf("EGEDM(s, s) = %v, want 0", got)
		}
	}
}

func TestEGEDEmptySequences(t *testing.T) {
	s := seq1(1, 2, 3)
	if got := EGED(nil, nil); got != 0 {
		t.Errorf("EGED(nil, nil) = %v, want 0", got)
	}
	// Gapping the whole of s against empty with constant zero gap = sum of norms.
	if got := EGEDM(s, nil, Vec{0}); !almostEq(got, 6) {
		t.Errorf("EGEDM(s, nil) = %v, want 6", got)
	}
	if got := EGEDM(nil, s, Vec{0}); !almostEq(got, 6) {
		t.Errorf("EGEDM(nil, s) = %v, want 6", got)
	}
}

func TestEGEDLocalTimeShift(t *testing.T) {
	// The adaptive gap makes a locally shifted copy cheap: the gapped
	// element costs |v_i - (v_{i-1}+v_i)/2| = half a step.
	a := seq1(0, 1, 2, 3, 4, 5)
	b := seq1(0, 1, 1, 2, 3, 4, 5) // element repeated: local shift
	shifted := EGED(a, b)
	if shifted > 0.51 {
		t.Errorf("EGED under local shift = %v, want <= 0.5", shifted)
	}
	// The metric variant with zero gap pays the full |v| for the same gap.
	metric := EGEDM(a, b, Vec{0})
	if metric <= shifted {
		t.Errorf("EGEDM (%v) should exceed non-metric EGED (%v) on shifted data", metric, shifted)
	}
}

func TestEGEDPaperExampleNonMetric(t *testing.T) {
	// Section 3.1's triangle-inequality counterexample, verbatim:
	// EGED(r,t) = 7 > EGED(r,s) + EGED(s,t) = 2 + 4.
	r := seq1(0)
	s := seq1(1, 1)
	tt := seq1(2, 2, 3)
	if got := EGED(r, tt); !almostEq(got, 7) {
		t.Errorf("EGED(r, t) = %v, want 7", got)
	}
	if got := EGED(r, s); !almostEq(got, 2) {
		t.Errorf("EGED(r, s) = %v, want 2", got)
	}
	if got := EGED(s, tt); !almostEq(got, 4) {
		t.Errorf("EGED(s, t) = %v, want 4", got)
	}
	if EGED(r, tt) <= EGED(r, s)+EGED(s, tt) {
		t.Error("expected the paper's triangle-inequality violation")
	}
}

func TestEGEDConstantSequencesNotCollapsed(t *testing.T) {
	// Gap costs are referenced against the other sequence, so two steady
	// trajectories far apart stay far apart regardless of length.
	flat0 := seq1(0, 0, 0, 0, 0)
	flat100 := seq1(100, 100, 100)
	if got := EGED(flat0, flat100); got < 300 {
		t.Errorf("EGED(flat0, flat100) = %v, want >= 300", got)
	}
}

func TestEGEDMMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func() Sequence {
		n := 1 + rng.Intn(6)
		s := make(Sequence, n)
		for i := range s {
			s[i] = Vec{rng.Float64() * 10, rng.Float64() * 10}
		}
		return s
	}
	g := Vec{0, 0}
	for trial := 0; trial < 500; trial++ {
		a, b, c := mk(), mk(), mk()
		dab := EGEDM(a, b, g)
		dba := EGEDM(b, a, g)
		if !almostEq(dab, dba) {
			t.Fatalf("trial %d: not symmetric: %v vs %v", trial, dab, dba)
		}
		if dab < 0 {
			t.Fatalf("trial %d: negative distance %v", trial, dab)
		}
		if got := EGEDM(a, a, g); !almostEq(got, 0) {
			t.Fatalf("trial %d: EGEDM(a, a) = %v", trial, got)
		}
		dac := EGEDM(a, c, g)
		dbc := EGEDM(b, c, g)
		if dac > dab+dbc+1e-9 {
			t.Fatalf("trial %d: triangle violation: d(a,c)=%v > d(a,b)+d(b,c)=%v", trial, dac, dab+dbc)
		}
	}
}

func TestEGEDMNonZeroGap(t *testing.T) {
	a := seq1(5)
	b := seq1(5, 9)
	// Gapping 9 against g=10 costs 1; matching 5-5 costs 0.
	if got := EGEDM(a, b, Vec{10}); !almostEq(got, 1) {
		t.Errorf("EGEDM with g=10 = %v, want 1", got)
	}
}

func TestGapRefModels(t *testing.T) {
	other := seq1(1, 5, 9)
	tests := []struct {
		name  string
		model GapModel
		j     int
		want  float64
	}{
		{"midpoint start", GapMidpoint, 0, 1},
		{"midpoint interior", GapMidpoint, 1, 3},
		{"midpoint interior 2", GapMidpoint, 2, 7},
		{"midpoint past end", GapMidpoint, 3, 9},
		{"previous start", GapPrevious, 0, 1},
		{"previous interior", GapPrevious, 2, 5},
	}
	// gapCost(model, x, other, ...) is Norm(x, ref); probing with x = {0}
	// reads the reference value back out.
	zero := Vec{0}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := gapCost(tc.model, zero, other, tc.j, 1, nil)
			if !almostEq(got, tc.want) {
				t.Errorf("gapCost = %v, want %v", got, tc.want)
			}
		})
	}
	if got := gapCost(GapConstant, zero, other, 1, 1, Vec{42}); !almostEq(got, 42) {
		t.Errorf("constant gapCost = %v, want 42", got)
	}
	if got := gapCost(GapMidpoint, Vec{0, 0, 0}, nil, 0, 3, nil); got != 0 {
		t.Errorf("empty-other gapCost = %v, want 0 against the zero vec", got)
	}
}

func TestDTWKnownValues(t *testing.T) {
	tests := []struct {
		name string
		a, b Sequence
		want float64
	}{
		{"identical", seq1(1, 2, 3), seq1(1, 2, 3), 0},
		{"stretched copy is free", seq1(1, 2, 3), seq1(1, 1, 2, 2, 3, 3), 0},
		{"constant offset", seq1(0, 0, 0), seq1(1, 1, 1), 3},
		{"both empty", nil, nil, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DTW(tt.a, tt.b); !almostEq(got, tt.want) {
				t.Errorf("DTW = %v, want %v", got, tt.want)
			}
		})
	}
	if got := DTW(seq1(1), nil); !math.IsInf(got, 1) {
		t.Errorf("DTW(x, empty) = %v, want +Inf", got)
	}
}

func TestDTWSymmetric(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		if len(aRaw) == 0 || len(bRaw) == 0 {
			return true
		}
		a := make(Sequence, len(aRaw))
		for i, v := range aRaw {
			a[i] = Vec{float64(v)}
		}
		b := make(Sequence, len(bRaw))
		for i, v := range bRaw {
			b[i] = Vec{float64(v)}
		}
		return almostEq(DTW(a, b), DTW(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLCSLength(t *testing.T) {
	tests := []struct {
		name string
		a, b Sequence
		eps  float64
		want int
	}{
		{"identical", seq1(1, 2, 3), seq1(1, 2, 3), 0.1, 3},
		{"disjoint", seq1(1, 2), seq1(10, 20), 0.1, 0},
		{"classic", seq1(1, 3, 5, 7), seq1(1, 5, 7, 9), 0.1, 3},
		{"eps matching", seq1(1, 2), seq1(1.05, 2.05), 0.1, 2},
		{"empty", nil, seq1(1), 0.1, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := LCSLength(tt.a, tt.b, tt.eps); got != tt.want {
				t.Errorf("LCSLength = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestLCSDist(t *testing.T) {
	if got := LCSDist(seq1(1, 2, 3), seq1(1, 2, 3), 0.1); !almostEq(got, 0) {
		t.Errorf("LCSDist(identical) = %v, want 0", got)
	}
	if got := LCSDist(seq1(1, 2), seq1(10, 20), 0.1); !almostEq(got, 1) {
		t.Errorf("LCSDist(disjoint) = %v, want 1", got)
	}
	if got := LCSDist(nil, nil, 0.1); got != 0 {
		t.Errorf("LCSDist(nil, nil) = %v, want 0", got)
	}
	if got := LCSDist(nil, seq1(1), 0.1); got != 1 {
		t.Errorf("LCSDist(nil, x) = %v, want 1", got)
	}
	m := LCSMetric(0.1)
	if got := m(seq1(1, 2, 3), seq1(1, 9, 3)); !almostEq(got, 1.0/3.0) {
		t.Errorf("LCSMetric = %v, want 1/3", got)
	}
}

func TestEditDistance(t *testing.T) {
	tests := []struct {
		name string
		a, b Sequence
		want int
	}{
		{"identical", seq1(1, 2, 3), seq1(1, 2, 3), 0},
		{"one substitution", seq1(1, 2, 3), seq1(1, 9, 3), 1},
		{"insert", seq1(1, 3), seq1(1, 2, 3), 1},
		{"all different", seq1(1, 2), seq1(8, 9), 2},
		{"empty vs full", nil, seq1(1, 2, 3), 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := EditDistance(tt.a, tt.b, 0.1); got != tt.want {
				t.Errorf("EditDistance = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestLp(t *testing.T) {
	a := seq1(0, 0, 0, 0)
	b := seq1(1, 1, 1, 1)
	if got := Lp(a, b, 2); !almostEq(got, 2) {
		t.Errorf("L2 = %v, want 2", got)
	}
	if got := Lp(a, b, 1); !almostEq(got, 4) {
		t.Errorf("L1 = %v, want 4", got)
	}
	// Different lengths: resampled.
	c := seq1(0, 0)
	if got := Lp(c, b, 1); !almostEq(got, 4) {
		t.Errorf("L1 resampled = %v, want 4", got)
	}
	if got := Lp(nil, nil, 2); got != 0 {
		t.Errorf("Lp(nil, nil) = %v, want 0", got)
	}
	if got := Lp(nil, b, 2); !math.IsInf(got, 1) {
		t.Errorf("Lp(nil, b) = %v, want +Inf", got)
	}
}

func TestLpPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Lp with p=0 did not panic")
		}
	}()
	Lp(seq1(1), seq1(2), 0)
}

func TestResample(t *testing.T) {
	s := seq1(0, 10)
	got := Resample(s, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if !almostEq(got[i][0], want[i]) {
			t.Errorf("Resample[%d] = %v, want %v", i, got[i][0], want[i])
		}
	}
	// Upsampling preserves endpoints; downsampling too.
	down := Resample(seq1(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 3)
	if !almostEq(down[0][0], 0) || !almostEq(down[2][0], 10) {
		t.Errorf("Resample endpoints = %v, %v", down[0][0], down[2][0])
	}
	if !almostEq(down[1][0], 5) {
		t.Errorf("Resample midpoint = %v, want 5", down[1][0])
	}
	single := Resample(seq1(7), 3)
	for _, v := range single {
		if !almostEq(v[0], 7) {
			t.Errorf("Resample single = %v, want 7", v[0])
		}
	}
}

func TestResampleDoesNotAliasInput(t *testing.T) {
	s := seq1(1, 2)
	out := Resample(s, 2)
	out[0][0] = 99
	if s[0][0] != 1 {
		t.Error("Resample aliased input storage")
	}
}

func TestSequenceCloneIndependent(t *testing.T) {
	s := seq2([2]float64{1, 2}, [2]float64{3, 4})
	c := s.Clone()
	c[0][0] = 99
	if s[0][0] != 1 {
		t.Error("Clone aliased input storage")
	}
	if s.Dim() != 2 {
		t.Errorf("Dim = %d, want 2", s.Dim())
	}
	var empty Sequence
	if empty.Dim() != 0 {
		t.Error("Dim of empty != 0")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	m := Counted(EGEDMZero, &c)
	a, b := seq1(1, 2), seq1(3)
	for i := 0; i < 5; i++ {
		m(a, b)
	}
	if c.Count() != 5 {
		t.Errorf("Count = %d, want 5", c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Errorf("Count after Reset = %d, want 0", c.Count())
	}
}

func TestERPEqualsEGEDM(t *testing.T) {
	a, b := seq1(1, 4, 2), seq1(2, 2, 3, 1)
	if got, want := ERP(a, b, Vec{0}), EGEDM(a, b, Vec{0}); !almostEq(got, want) {
		t.Errorf("ERP = %v, EGEDM = %v; want equal", got, want)
	}
}

func TestEGEDWithDTWGapApproximatesRepetitionTolerance(t *testing.T) {
	// With the previous-value gap, an element repeated while the other
	// sequence stands at the same value costs nothing extra.
	a := seq1(5, 10, 20)
	b := seq1(5, 5, 10, 20)
	withPrev := EGEDWith(a, b, GapPrevious, nil)
	withZero := EGEDWith(a, b, GapConstant, nil)
	if withPrev >= withZero {
		t.Errorf("previous-gap (%v) should beat zero-gap (%v) on repeated data", withPrev, withZero)
	}
	if !almostEq(withPrev, 0) {
		t.Errorf("previous-gap on stretched copy = %v, want 0", withPrev)
	}
}
