// Package dist implements the (dis)similarity measures of the paper:
// the Extended Graph Edit Distance (EGED, Definition 9) in its non-metric
// and metric forms, and the baselines it is evaluated against — DTW, LCS,
// ERP, edit distance and Lp norms.
//
// All measures operate on Sequence values: the per-frame node-attribute
// sequences of Object Graphs. Since the paper's edit operations "deal with
// nodes and their attributes rather than edges", an OG enters a distance
// computation as the time-ordered sequence of its node attribute vectors
// (in the experiments: region centroids, matching the trajectory data of
// Section 6.1).
//
// # A note on Definition 9's base cases
//
// Definition 9 literally defines EGED(s, t) for n = 1 as Σ|s_i − g_i|,
// which makes EGED(x, x) non-zero for single-node graphs and contradicts
// the paper's own worked example (it computes EGED({0},{2,2,3}) = 7, i.e.
// Σ|t_i − 0|). We therefore use the standard edit-distance base cases at
// m = 0 / n = 0 — the cost of gapping the whole remaining sequence — which
// the paper itself adopts for the metric variant ("In EGED_M, we include
// the cases that n = 0 and m = 0"). The two variants then differ only in
// the gap model, exactly as in Section 3: the non-metric EGED uses the
// adaptive gap g_i = (v_{i−1}+v_i)/2 (local time shifting), the metric
// EGED_M a fixed constant gap (Theorem 2).
package dist

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Vec is one node-attribute value ν(v): a point in a low-dimensional
// feature space (dimension 2 — the region centroid — throughout the
// experiments).
type Vec []float64

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Norm returns the Euclidean distance |a − b|. It panics if the dimensions
// differ: sequences entering one distance computation must share a feature
// space, and a mismatch is a programming error. (PairwiseMatrix and
// CrossMatrix recover that panic and surface it as an error, so a bad
// sequence poisons one matrix computation instead of crashing a worker
// pool.)
func Norm(a, b Vec) float64 {
	return math.Sqrt(NormSq(a, b))
}

// NormSq returns the squared Euclidean distance |a − b|². Comparisons that
// only rank distances — nearest-centroid argmins, the eps thresholds of
// LCS/EDR — use NormSq to skip the redundant math.Sqrt, since x ↦ x² is
// monotone on distances. Same dimension-mismatch panic as Norm.
func NormSq(a, b Vec) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("dist: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// Sequence is a time-ordered sequence of attribute vectors — the signal of
// one Object Graph.
type Sequence []Vec

// Dim returns the dimensionality of the sequence's vectors (0 for empty).
func (s Sequence) Dim() int {
	if len(s) == 0 {
		return 0
	}
	return len(s[0])
}

// Clone returns a deep copy of s.
func (s Sequence) Clone() Sequence {
	out := make(Sequence, len(s))
	for i, v := range s {
		out[i] = v.Clone()
	}
	return out
}

// Resample linearly resamples s to exactly n samples, uniform in index.
// It panics if s is empty or n < 1.
func Resample(s Sequence, n int) Sequence {
	if len(s) == 0 {
		panic("dist: Resample of empty sequence")
	}
	if n < 1 {
		panic("dist: Resample to fewer than 1 sample")
	}
	out := make(Sequence, n)
	if n == 1 || len(s) == 1 {
		for i := range out {
			out[i] = s[0].Clone()
		}
		return out
	}
	d := s.Dim()
	scale := float64(len(s)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		pos := float64(i) * scale
		lo := int(pos)
		if lo >= len(s)-1 {
			out[i] = s[len(s)-1].Clone()
			continue
		}
		t := pos - float64(lo)
		v := make(Vec, d)
		for k := 0; k < d; k++ {
			v[k] = s[lo][k]*(1-t) + s[lo+1][k]*t
		}
		out[i] = v
	}
	return out
}

// Metric is a dissimilarity function over sequences. Despite the name, not
// every Metric satisfies the metric axioms — EGED and DTW do not; EGEDM,
// ERP and Lp do.
type Metric func(a, b Sequence) float64

// GapModel selects how the cost of editing a node against a gap is
// referenced (Definition 9's g_i).
//
// The paper's worked example (Section 3.1: EGED({1,1},{2,2,3}) = 4,
// EGED({0},{2,2,3}) = 7, EGED({0},{1,1}) = 2) pins the semantics down:
// g_i is interpolated from the OTHER sequence at the current alignment
// position. Gapping a node of one sequence while j nodes of the other have
// been consumed costs the distance to the midpoint (v'_{j-1}+v'_j)/2 — the
// value the other sequence is passing through right there. Referencing the
// gapped sequence itself instead would make deletions inside any constant
// run free and collapse the distance between unrelated steady trajectories.
type GapModel int

const (
	// GapMidpoint is the paper's non-metric model: the gap reference is
	// the midpoint of the other sequence's surrounding values (local time
	// shifting tolerated at half-step cost).
	GapMidpoint GapModel = iota
	// GapPrevious replicates the other sequence's previous value — the
	// DTW-flavored model the paper mentions ("when g_i = v_{i-1}, the
	// cost function is the same as one in DTW").
	GapPrevious
	// GapConstant uses a fixed constant reference (Theorem 2), which makes
	// the distance a metric.
	GapConstant
)

// EGEDWith computes the extended graph edit distance DP under the given
// gap model. g is the constant gap reference (required for GapConstant;
// used as the empty-sequence fallback otherwise — nil means the zero
// vector).
//
// The DP runs over two pooled rolling rows and virtualizes the gap
// reference vectors (see dp.go), so the steady state allocates nothing.
func EGEDWith(a, b Sequence, model GapModel, g Vec) float64 {
	d, _ := EGEDWithUB(a, b, model, g, math.Inf(1))
	return d
}

// EGEDWithUB is the threshold-aware form of EGEDWith: it runs the same DP
// but abandons as soon as the minimum of a completed row exceeds ub.
// Every cost in the DP is non-negative and every alignment path visits
// every row, so the final distance is at least any row's minimum — once a
// row minimum exceeds ub the true distance provably does too.
//
// When abandoned is false, d is the exact distance, bit-for-bit identical
// to EGEDWith (the cutoff only observes row minima; it never changes a
// cell). When abandoned is true, d is the offending row minimum — an
// admissible lower bound on the true distance, which is strictly greater
// than ub. With ub = +Inf the cutoff can never fire (rowMin > +Inf is
// false even for rowMin = +Inf), so the exact path delegates here.
func EGEDWithUB(a, b Sequence, model GapModel, g Vec, ub float64) (d float64, abandoned bool) {
	totalEvals.Add(1)
	m, n := len(a), len(b)
	if m == 0 && n == 0 {
		return 0, false
	}
	dim := a.Dim()
	if dim == 0 {
		dim = b.Dim()
	}
	if model == GapConstant && g == nil {
		g = zeroVec(dim)
	}
	sc := getScratch()
	defer putScratch(sc)
	prev, cur := sc.floatRows(n + 1)
	prev[0] = 0
	for j := 1; j <= n; j++ {
		prev[j] = prev[j-1] + gapCost(model, b[j-1], a, 0, dim, g)
	}
	for i := 1; i <= m; i++ {
		cur[0] = prev[0] + gapCost(model, a[i-1], b, 0, dim, g)
		rowMin := cur[0]
		for j := 1; j <= n; j++ {
			match := prev[j-1] + Norm(a[i-1], b[j-1])
			gapA := prev[j] + gapCost(model, a[i-1], b, j, dim, g)
			gapB := cur[j-1] + gapCost(model, b[j-1], a, i, dim, g)
			cur[j] = math.Min(match, math.Min(gapA, gapB))
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		prev, cur = cur, prev
		if rowMin > ub {
			dpCells.Add(int64(n) + int64(i)*int64(n+1))
			return rowMin, true
		}
	}
	dpCells.Add(int64(n) + int64(m)*int64(n+1))
	return prev[n], false
}

// zeroVecs caches the zero gap references for the low dimensions the
// system actually uses, so EGEDM(a, b, nil) does not allocate one per
// call.
var zeroVecs = [...]Vec{0: {}, 1: make(Vec, 1), 2: make(Vec, 2), 3: make(Vec, 3), 4: make(Vec, 4)}

func zeroVec(dim int) Vec {
	if dim < len(zeroVecs) {
		return zeroVecs[dim]
	}
	return make(Vec, dim)
}

// EGED is the non-metric Extended Graph Edit Distance with the adaptive
// midpoint gap, used for matching and clustering (Section 3.1, Section 4).
func EGED(a, b Sequence) float64 {
	return EGEDWith(a, b, GapMidpoint, nil)
}

// EGEDM is the metric Extended Graph Edit Distance with a fixed constant
// gap g (Theorem 2), used as the index key metric. A nil g means the zero
// vector of the sequences' dimension.
func EGEDM(a, b Sequence, g Vec) float64 {
	return EGEDWith(a, b, GapConstant, g)
}

// EGEDMZero is EGEDM with the zero gap, in Metric form.
func EGEDMZero(a, b Sequence) float64 { return EGEDM(a, b, nil) }

// ERP is Chen's Edit distance with Real Penalty — identical to EGEDM; kept
// as a named baseline since the paper derives EGED from it.
func ERP(a, b Sequence, g Vec) float64 { return EGEDM(a, b, g) }

// MetricUB is a threshold-aware dissimilarity: it may abandon the
// computation once the distance is provably above ub. When abandoned is
// false, d is the exact distance (bit-identical to the plain Metric);
// when abandoned is true, d is an admissible lower bound > ub.
type MetricUB func(a, b Sequence, ub float64) (d float64, abandoned bool)

// EGEDMUB is the threshold-aware EGED_M kernel (early row abandoning).
func EGEDMUB(a, b Sequence, g Vec, ub float64) (float64, bool) {
	return EGEDWithUB(a, b, GapConstant, g, ub)
}

// EGEDMZeroUB is EGEDMUB with the zero gap, in MetricUB form.
func EGEDMZeroUB(a, b Sequence, ub float64) (float64, bool) {
	return EGEDMUB(a, b, nil, ub)
}

// ERPUB is the threshold-aware ERP kernel (identical to EGEDMUB).
func ERPUB(a, b Sequence, g Vec, ub float64) (float64, bool) {
	return EGEDMUB(a, b, g, ub)
}

// DTW is classic Dynamic Time Warping: monotone alignment with repetition,
// no gap penalty. It is not a metric (triangle inequality fails).
// DTW of anything against an empty sequence is +Inf (no alignment exists).
func DTW(a, b Sequence) float64 {
	d, _ := DTWUB(a, b, math.Inf(1))
	return d
}

// DTWUB is the threshold-aware DTW kernel: same abandoning argument as
// EGEDWithUB (warping paths visit every row, per-cell costs are
// non-negative), same exactness contract — with ub = +Inf or when
// abandoned is false the result is bit-identical to DTW.
func DTWUB(a, b Sequence, ub float64) (d float64, abandoned bool) {
	totalEvals.Add(1)
	m, n := len(a), len(b)
	if m == 0 || n == 0 {
		if m == 0 && n == 0 {
			return 0, false
		}
		return math.Inf(1), false
	}
	sc := getScratch()
	defer putScratch(sc)
	prev, cur := sc.floatRows(n + 1)
	prev[0] = 0
	for j := 1; j <= n; j++ {
		prev[j] = math.Inf(1)
	}
	for i := 1; i <= m; i++ {
		cur[0] = math.Inf(1)
		rowMin := math.Inf(1)
		for j := 1; j <= n; j++ {
			c := Norm(a[i-1], b[j-1])
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = c + best
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		prev, cur = cur, prev
		prev[0] = math.Inf(1)
		if rowMin > ub {
			dpCells.Add(int64(i) * int64(n))
			return rowMin, true
		}
	}
	dpCells.Add(int64(m) * int64(n))
	return prev[n], false
}

// LCSLength returns the length of the longest common subsequence of a and
// b, where two samples match when their distance is at most eps.
func LCSLength(a, b Sequence, eps float64) int {
	totalEvals.Add(1)
	m, n := len(a), len(b)
	if m == 0 || n == 0 {
		return 0
	}
	sc := getScratch()
	defer putScratch(sc)
	prev, cur := sc.intRows(n + 1)
	for j := 0; j <= n; j++ {
		prev[j], cur[j] = 0, 0
	}
	epsSq := math.Inf(-1)
	if eps >= 0 {
		epsSq = eps * eps
	}
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			if NormSq(a[i-1], b[j-1]) <= epsSq {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
		for k := range cur {
			cur[k] = 0
		}
	}
	dpCells.Add(int64(m) * int64(n))
	return prev[n]
}

// LCSDist converts LCS similarity into a dissimilarity in [0, 1]:
// 1 − LCS/min(m, n). Two empty sequences are at distance 0; an empty
// against a non-empty is at distance 1.
func LCSDist(a, b Sequence, eps float64) float64 {
	m, n := len(a), len(b)
	if m == 0 && n == 0 {
		return 0
	}
	if m == 0 || n == 0 {
		return 1
	}
	minLen := m
	if n < minLen {
		minLen = n
	}
	return 1 - float64(LCSLength(a, b, eps))/float64(minLen)
}

// LCSMetric returns LCSDist as a Metric with the given matching epsilon.
func LCSMetric(eps float64) Metric {
	return func(a, b Sequence) float64 { return LCSDist(a, b, eps) }
}

// EditDistance is the classic symbolic edit distance with unit costs,
// where two samples are equal when within eps.
func EditDistance(a, b Sequence, eps float64) int {
	totalEvals.Add(1)
	m, n := len(a), len(b)
	sc := getScratch()
	defer putScratch(sc)
	prev, cur := sc.intRows(n + 1)
	for j := 0; j <= n; j++ {
		prev[j] = j
	}
	epsSq := math.Inf(-1)
	if eps >= 0 {
		epsSq = eps * eps
	}
	for i := 1; i <= m; i++ {
		cur[0] = i
		for j := 1; j <= n; j++ {
			sub := prev[j-1]
			if NormSq(a[i-1], b[j-1]) > epsSq {
				sub++
			}
			del := prev[j] + 1
			ins := cur[j-1] + 1
			best := sub
			if del < best {
				best = del
			}
			if ins < best {
				best = ins
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	dpCells.Add(int64(m) * int64(n))
	return prev[n]
}

// Lp computes the Minkowski distance of order p between two sequences,
// resampling both to the longer length first (the traditional lock-step
// baseline of Section 1). It panics for p <= 0. Two empty sequences are at
// distance 0; empty vs non-empty is +Inf.
func Lp(a, b Sequence, p float64) float64 {
	if p <= 0 {
		panic("dist: Lp with non-positive p")
	}
	totalEvals.Add(1)
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	ra, rb := Resample(a, n), Resample(b, n)
	var sum float64
	if p == 2 {
		// Fast path for the L2 lock-step metric: summing NormSq skips a
		// sqrt-then-square round trip per sample.
		for i := 0; i < n; i++ {
			sum += NormSq(ra[i], rb[i])
		}
		return math.Sqrt(sum)
	}
	for i := 0; i < n; i++ {
		sum += math.Pow(Norm(ra[i], rb[i]), p)
	}
	return math.Pow(sum, 1/p)
}

// Euclidean is the L2 lock-step Metric.
func Euclidean(a, b Sequence) float64 { return Lp(a, b, 2) }

// totalEvals counts every top-level sequence-distance evaluation in the
// process (EGED/EGED_M/ERP, DTW, LCS, edit distance, Lp) — the quantity
// the paper's query-cost model treats as the dominant component of query
// time (Section 6.3), now observable at runtime. One atomic add per DP
// call is noise next to the O(mn) kernel it counts.
var totalEvals atomic.Int64

// TotalEvals returns the process-wide number of distance evaluations. The
// HTTP server exposes it as the strg_dist_evals_total metric.
func TotalEvals() int64 { return totalEvals.Load() }

// dpCells counts DP cells actually evaluated by the sequence kernels
// (EGED family, DTW, LCS, edit distance) — the denominator of the
// filter-and-refine cascade's win: early-abandoned kernels add only the
// rows they completed. One atomic add per kernel call, like totalEvals.
var dpCells atomic.Int64

// DPCells returns the process-wide number of DP cells evaluated. The
// cascade benchmarks report deltas of this counter; the HTTP server
// exposes it as strg_dist_dp_cells_total.
func DPCells() int64 { return dpCells.Load() }

// Counter counts distance evaluations. The paper's query-cost model
// (Section 6.3) takes the number of distance evaluations as the dominant
// component of query time; experiments wrap their metrics with Counted to
// measure it. The count is atomic, so counted metrics remain exact when
// evaluated from the parallel worker pools (PairwiseMatrix, parallel
// k-NN) — though the experiment harness pins Concurrency to 1 where the
// paper's sequential evaluation counts are being reproduced.
type Counter struct {
	n atomic.Int64
}

// Count returns the number of evaluations so far.
func (c *Counter) Count() int64 { return c.n.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n.Store(0) }

// Counted wraps m so each evaluation increments c.
func Counted(m Metric, c *Counter) Metric {
	return func(a, b Sequence) float64 {
		c.n.Add(1)
		return m(a, b)
	}
}
