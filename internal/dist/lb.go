package dist

import "math"

// This file implements the filter side of the filter-and-refine cascade:
// cheap admissible lower bounds on the O(mn) DP distances, plus the
// per-sequence Summary they are computed from. A bound LB is admissible
// when LB(a, b) <= d(a, b) in exact arithmetic; search code prunes a
// candidate only when its bound strictly exceeds the current pruning
// threshold, so admissibility makes the cascade result-preserving.
//
// Three bound tiers, cheapest first:
//
//  1. Gap-sum (EGED_M family, O(1) from summaries): with A = Σ|a_i − g|
//     and B = Σ|b_j − g|, every alignment pays |a_i − b_j| >= ||a_i − g| −
//     |b_j − g|| for a match (triangle inequality) and exactly the gap
//     norm for a gap, so EGED_M(a, b) >= |A − B|.
//  2. Ends (LB_Kim style, O(1)): the first edit operation consumes a_0 or
//     b_0 and the last consumes a_{m−1} or b_{n−1}; each costs at least
//     the cheapest of its three choices (match or either gap). For DTW the
//     pairs (a_0, b_0) and (a_{m−1}, b_{n−1}) are always aligned.
//  3. Envelope (LB_Keogh style, O(m·dim) with an O(1)-size precomputed
//     Box): every a_i is either matched to some b_j — costing at least the
//     distance from a_i to b's bounding box — or gapped at cost |a_i − g|,
//     so EGED_M(a, b) >= Σ_i min(boxDist(a_i, Box_b), |a_i − g|). For DTW
//     there is no gap, so DTW(a, b) >= Σ_i boxDist(a_i, Box_b).
//
// The Cascade interface bundles a metric with its bounds and its
// threshold-aware kernel; the index stores one Summary per leaf record at
// build time and runs the cascade per candidate at search time.

// Box is the axis-aligned bounding box of a sequence's vectors — the
// per-sequence envelope precomputed at index-build time. The zero value
// (nil Min/Max) denotes the box of an empty sequence.
type Box struct {
	Min, Max Vec
}

// boxDist returns the Euclidean distance from v to the box — 0 when v is
// inside. For any u in the box, boxDist(v) <= |v − u| holds coordinate by
// coordinate (the clamped offset never exceeds |v_k − u_k|), and the float
// operations are monotone, so the inequality holds bit-for-bit.
func (b Box) boxDist(v Vec) float64 {
	var sum float64
	for k := range v {
		d := 0.0
		if v[k] < b.Min[k] {
			d = b.Min[k] - v[k]
		} else if v[k] > b.Max[k] {
			d = v[k] - b.Max[k]
		}
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Summary is the per-sequence precomputation of the lower-bound cascade:
// O(1) storage per sequence, computed once at index-build (or query) time.
type Summary struct {
	// Len is the sequence length.
	Len int
	// GapSum is Σ|x − g| over the sequence under the cascade's constant
	// gap (EGED_M family; 0 for cascades without a gap model).
	GapSum float64
	// Box is the sequence's envelope (nil Min/Max for an empty sequence).
	Box Box
}

// summarizeBox computes the bounding box of s (zero Box for empty s).
func summarizeBox(s Sequence) Box {
	if len(s) == 0 {
		return Box{}
	}
	min := s[0].Clone()
	max := s[0].Clone()
	for _, v := range s[1:] {
		for k := range v {
			if v[k] < min[k] {
				min[k] = v[k]
			}
			if v[k] > max[k] {
				max[k] = v[k]
			}
		}
	}
	return Box{Min: min, Max: max}
}

// gapNorm is |x − g| with a nil g meaning the zero vector — the same
// arithmetic the DP kernels use (Norm against zeroVec produces identical
// bits, since x − 0 == x exactly).
func gapNorm(x, g Vec) float64 {
	if g == nil {
		return normToZero(x, len(x))
	}
	return Norm(x, g)
}

// Cascade bundles a sequence metric with its admissible lower bounds and
// its threshold-aware DP kernel. All methods must be consistent: both
// bounds <= Metric in exact arithmetic, and DistanceUB must return the
// exact Metric value bit-for-bit whenever it does not abandon.
type Cascade interface {
	// Metric is the exact distance.
	Metric(a, b Sequence) float64
	// Summarize precomputes a sequence's Summary.
	Summarize(s Sequence) Summary
	// LBQuick is the O(1) bound from two summaries plus the sequences'
	// end elements.
	LBQuick(a, b Sequence, sa, sb Summary) float64
	// LBEnvelope is the O(len(a)) bound of a against b's envelope.
	LBEnvelope(a Sequence, sb Summary) float64
	// DistanceUB is the early-abandoning kernel (see MetricUB).
	DistanceUB(a, b Sequence, ub float64) (float64, bool)
}

// CompactLBer is an optional Cascade capability: LBQuick computed from
// the candidate's summary and end elements alone, without touching its
// sequence. Batch scanners (the approximate tier's rerank) keep those
// three values in flat per-list arrays, so the admissible quick bound
// runs over sequential memory instead of chasing a pointer per
// candidate. Implementations MUST be bit-identical to
// LBQuick(a, b, sa, sb) whenever bFirst == b[0], bLast == b[len(b)-1]
// and sb == Summarize(b) — prune decisions feed exactness contracts.
type CompactLBer interface {
	LBQuickCompact(a Sequence, sa Summary, bFirst, bLast Vec, sb Summary) float64
}

// EGEDMCascade returns the cascade for the metric Extended Graph Edit
// Distance with constant gap g (nil means the zero vector) — the index's
// default key metric, and identical to ERP.
func EGEDMCascade(g Vec) Cascade { return egedmCascade{g: g} }

type egedmCascade struct{ g Vec }

func (c egedmCascade) Metric(a, b Sequence) float64 { return EGEDM(a, b, c.g) }

func (c egedmCascade) Summarize(s Sequence) Summary {
	sum := Summary{Len: len(s), Box: summarizeBox(s)}
	// Left-to-right accumulation matches the DP's base-row order, so a
	// distance against an empty sequence equals GapSum bit-for-bit.
	for _, v := range s {
		sum.GapSum += gapNorm(v, c.g)
	}
	return sum
}

func (c egedmCascade) LBQuick(a, b Sequence, sa, sb Summary) float64 {
	lb := math.Abs(sa.GapSum - sb.GapSum)
	if len(a) == 0 || len(b) == 0 {
		return lb
	}
	// First edit operation: match(a_0, b_0), gap a_0, or gap b_0.
	first := math.Min(Norm(a[0], b[0]),
		math.Min(gapNorm(a[0], c.g), gapNorm(b[0], c.g)))
	ends := first
	if len(a) > 1 || len(b) > 1 {
		// Any script consuming max(m, n) >= 2 elements has at least two
		// operations, so the last one is distinct from the first.
		last := math.Min(Norm(a[len(a)-1], b[len(b)-1]),
			math.Min(gapNorm(a[len(a)-1], c.g), gapNorm(b[len(b)-1], c.g)))
		ends += last
	}
	return math.Max(lb, ends)
}

// LBQuickCompact implements CompactLBer: the same operations in the same
// order as LBQuick, reading b's contribution from its ends and summary.
func (c egedmCascade) LBQuickCompact(a Sequence, sa Summary, bFirst, bLast Vec, sb Summary) float64 {
	lb := math.Abs(sa.GapSum - sb.GapSum)
	if len(a) == 0 || sb.Len == 0 {
		return lb
	}
	first := math.Min(Norm(a[0], bFirst),
		math.Min(gapNorm(a[0], c.g), gapNorm(bFirst, c.g)))
	ends := first
	if len(a) > 1 || sb.Len > 1 {
		last := math.Min(Norm(a[len(a)-1], bLast),
			math.Min(gapNorm(a[len(a)-1], c.g), gapNorm(bLast, c.g)))
		ends += last
	}
	return math.Max(lb, ends)
}

func (c egedmCascade) LBEnvelope(a Sequence, sb Summary) float64 {
	var lb float64
	if sb.Len == 0 {
		// Exact: the only script gaps all of a.
		for _, v := range a {
			lb += gapNorm(v, c.g)
		}
		return lb
	}
	for _, v := range a {
		t := sb.Box.boxDist(v)
		if gc := gapNorm(v, c.g); gc < t {
			t = gc
		}
		lb += t
	}
	return lb
}

func (c egedmCascade) DistanceUB(a, b Sequence, ub float64) (float64, bool) {
	return EGEDMUB(a, b, c.g, ub)
}

// DTWCascade returns the cascade for classic DTW.
func DTWCascade() Cascade { return dtwCascade{} }

type dtwCascade struct{}

func (dtwCascade) Metric(a, b Sequence) float64 { return DTW(a, b) }

func (dtwCascade) Summarize(s Sequence) Summary {
	return Summary{Len: len(s), Box: summarizeBox(s)}
}

func (dtwCascade) LBQuick(a, b Sequence, sa, sb Summary) float64 {
	m, n := len(a), len(b)
	if m == 0 || n == 0 {
		if m == 0 && n == 0 {
			return 0
		}
		return math.Inf(1) // DTW against an empty sequence is +Inf.
	}
	// LB_Kim: the warping path always aligns the first pair and the last
	// pair; they are distinct pairs unless both sequences are singletons.
	lb := Norm(a[0], b[0])
	if m+n > 2 {
		lb += Norm(a[m-1], b[n-1])
	}
	return lb
}

// LBQuickCompact implements CompactLBer (see egedmCascade's).
func (dtwCascade) LBQuickCompact(a Sequence, _ Summary, bFirst, bLast Vec, sb Summary) float64 {
	m, n := len(a), sb.Len
	if m == 0 || n == 0 {
		if m == 0 && n == 0 {
			return 0
		}
		return math.Inf(1)
	}
	lb := Norm(a[0], bFirst)
	if m+n > 2 {
		lb += Norm(a[m-1], bLast)
	}
	return lb
}

func (dtwCascade) LBEnvelope(a Sequence, sb Summary) float64 {
	if sb.Len == 0 {
		if len(a) == 0 {
			return 0
		}
		return math.Inf(1)
	}
	var lb float64
	for _, v := range a {
		lb += sb.Box.boxDist(v)
	}
	return lb
}

func (dtwCascade) DistanceUB(a, b Sequence, ub float64) (float64, bool) {
	return DTWUB(a, b, ub)
}

// ExactOnly wraps an arbitrary Metric as a degenerate Cascade: both
// bounds are 0 (trivially admissible) and DistanceUB never abandons. It
// is the fallback for metrics without known lower bounds — the cascade
// machinery stays in place but every candidate pays the exact distance,
// matching pre-cascade behavior (and preserving wrapped eval counters).
func ExactOnly(m Metric) Cascade { return exactOnly{m: m} }

type exactOnly struct{ m Metric }

func (c exactOnly) Metric(a, b Sequence) float64              { return c.m(a, b) }
func (exactOnly) Summarize(s Sequence) Summary                { return Summary{Len: len(s)} }
func (exactOnly) LBQuick(_, _ Sequence, _, _ Summary) float64 { return 0 }
func (exactOnly) LBEnvelope(_ Sequence, _ Summary) float64    { return 0 }
func (c exactOnly) DistanceUB(a, b Sequence, _ float64) (float64, bool) {
	return c.m(a, b), false
}

// HashSequence returns a 64-bit FNV-1a content hash of a sequence — the
// identity under which computed distances are cached. Two sequences hash
// equal iff (modulo astronomically unlikely collisions) they have the
// same lengths and the same float64 bits, which is exactly the identity
// the deterministic kernels respect.
func HashSequence(s Sequence) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for k := 0; k < 8; k++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(len(s)))
	for _, v := range s {
		mix(uint64(len(v)))
		for _, f := range v {
			mix(math.Float64bits(f))
		}
	}
	return h
}
