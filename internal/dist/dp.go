package dist

import (
	"fmt"
	"math"
	"sync"
)

// dpScratch holds the two rolling DP rows every kernel in this package
// needs. The rows are pooled so that the steady state of a distance-heavy
// workload (pairwise matrices, EM iterations, leaf scans) performs no
// allocations per distance call: each call borrows a scratch, sizes its
// rows, and returns it.
//
// Rows come back from the pool with stale contents; every kernel fully
// initializes the cells it reads, so reuse cannot change results.
type dpScratch struct {
	f0, f1 []float64
	i0, i1 []int
}

var dpPool = sync.Pool{New: func() any { return new(dpScratch) }}

func getScratch() *dpScratch  { return dpPool.Get().(*dpScratch) }
func putScratch(s *dpScratch) { dpPool.Put(s) }

// floatRows returns the two float64 rows, each of length n, without
// clearing them.
func (s *dpScratch) floatRows(n int) (prev, cur []float64) {
	if cap(s.f0) < n {
		s.f0 = make([]float64, n)
		s.f1 = make([]float64, n)
	}
	return s.f0[:n], s.f1[:n]
}

// intRows returns the two int rows, each of length n, without clearing
// them.
func (s *dpScratch) intRows(n int) (prev, cur []int) {
	if cap(s.i0) < n {
		s.i0 = make([]int, n)
		s.i1 = make([]int, n)
	}
	return s.i0[:n], s.i1[:n]
}

// The helpers below compute the gap costs of Definition 9 against virtual
// reference vectors — the midpoint of two samples, or the zero vector —
// without materializing the reference. They mirror Norm's arithmetic
// exactly (same operations in the same order), so switching to them does
// not move a single bit of any distance value; they exist so the EGED
// inner loop allocates nothing.

// normToMid returns |x − (p+q)/2| without building the midpoint vector.
func normToMid(x, p, q Vec) float64 {
	if len(x) != len(p) || len(x) != len(q) {
		panic(fmt.Sprintf("dist: dimension mismatch %d vs %d", len(x), len(p)))
	}
	var sum float64
	for k := range x {
		d := x[k] - (p[k]+q[k])/2
		sum += d * d
	}
	return math.Sqrt(sum)
}

// normToZero returns |x − 0_dim|, panicking on dimension mismatch exactly
// like Norm(x, make(Vec, dim)) would.
func normToZero(x Vec, dim int) float64 {
	if len(x) != dim {
		panic(fmt.Sprintf("dist: dimension mismatch %d vs %d", len(x), dim))
	}
	var sum float64
	for k := range x {
		sum += x[k] * x[k]
	}
	return math.Sqrt(sum)
}

// gapCost returns the cost of editing node x against a gap aligned after
// j consumed nodes of other — Norm(x, gapRef(...)) with the reference
// vector virtualized away.
func gapCost(model GapModel, x Vec, other Sequence, j, dim int, g Vec) float64 {
	if model == GapConstant {
		return Norm(x, g)
	}
	if len(other) == 0 {
		if g != nil {
			return Norm(x, g)
		}
		return normToZero(x, dim)
	}
	switch model {
	case GapPrevious:
		if j == 0 {
			return Norm(x, other[0])
		}
		return Norm(x, other[j-1])
	default: // GapMidpoint
		if j == 0 {
			return Norm(x, other[0])
		}
		if j >= len(other) {
			return Norm(x, other[len(other)-1])
		}
		return normToMid(x, other[j-1], other[j])
	}
}
