package dist

import (
	"math"
	"math/rand"
	"testing"
)

// colSequences builds deterministic random 2-D sequences, including some
// empty ones, for layout and kernel cross-checks.
func colSequences(rng *rand.Rand, n int) []Sequence {
	seqs := make([]Sequence, n)
	for i := range seqs {
		l := rng.Intn(12)
		if l == 0 {
			continue
		}
		s := make(Sequence, l)
		for j := range s {
			s[j] = Vec{rng.NormFloat64() * 40, rng.NormFloat64() * 40}
		}
		seqs[i] = s
	}
	return seqs
}

func sameBits(a, b Sequence) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for k := range a[i] {
			if math.Float64bits(a[i][k]) != math.Float64bits(b[i][k]) {
				return false
			}
		}
	}
	return true
}

// TestColumnarRoundTrip is the layout property test: FromSequences →
// ToSequences preserves every float64 bit and the empty/non-empty
// structure, and the single-sequence forms agree with the bulk forms.
func TestColumnarRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 50; trial++ {
		seqs := colSequences(rng, rng.Intn(9))
		blocks := FromSequences(seqs)
		if len(blocks) != len(seqs) {
			t.Fatalf("FromSequences returned %d blocks for %d sequences", len(blocks), len(seqs))
		}
		back := ToSequences(blocks)
		for i := range seqs {
			if !sameBits(seqs[i], back[i]) {
				t.Fatalf("trial %d seq %d: round trip changed bits: %v -> %v", trial, i, seqs[i], back[i])
			}
			if len(seqs[i]) == 0 && back[i] != nil {
				t.Fatalf("trial %d seq %d: empty sequence came back non-nil", trial, i)
			}
			single := FromSequence(seqs[i])
			if single.Len() != blocks[i].Len() || single.Dim() != blocks[i].Dim() {
				t.Fatalf("trial %d seq %d: FromSequence shape (%d,%d) != FromSequences (%d,%d)",
					trial, i, single.Len(), single.Dim(), blocks[i].Len(), blocks[i].Dim())
			}
			if !sameBits(single.Sequence(), back[i]) {
				t.Fatalf("trial %d seq %d: FromSequence view differs from bulk view", trial, i)
			}
		}
	}
}

// TestColumnarViewsShareBuffer: Block.Sequence returns views into the
// block's buffer (the one-copy-two-paths invariant), not fresh copies.
func TestColumnarViewsShareBuffer(t *testing.T) {
	b := FromSequence(Sequence{{1, 2}, {3, 4}, {5, 6}})
	view := b.Sequence()
	b.Data()[2] = 99 // second row, first coordinate
	if view[1][0] != 99 {
		t.Fatalf("view did not observe buffer write: %v", view)
	}
	row := b.Row(1)
	if &row[0] != &view[1][0] {
		t.Fatal("Row and Sequence views do not alias the same memory")
	}
}

func TestBlockOf(t *testing.T) {
	if _, err := BlockOf(make([]float64, 5), 2, 2); err == nil {
		t.Fatal("BlockOf accepted 5 floats as a 2x2 block")
	}
	if _, err := BlockOf(nil, -1, 2); err == nil {
		t.Fatal("BlockOf accepted negative n")
	}
	b, err := BlockOf([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sameBits(b.Sequence(), Sequence{{1, 2}, {3, 4}, {5, 6}}) {
		t.Fatalf("BlockOf decoded wrong rows: %v", b.Sequence())
	}
	empty, err := BlockOf(nil, 0, 0)
	if err != nil || empty.Len() != 0 || empty.Sequence() != nil {
		t.Fatalf("BlockOf empty = (%v, %v)", empty, err)
	}
}

func TestFromSequencePanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSequence accepted a ragged sequence")
		}
	}()
	FromSequence(Sequence{{1, 2}, {3}})
}

// TestBatchKernelBitIdentity is the batched kernel's core contract: for
// random pairs and a range of thresholds, Batch.DistanceUB returns the
// same bits, the same abandon decision, and the same eval/cell accounting
// deltas as EGEDWithUB on the corresponding sequences.
func TestBatchKernelBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	var gaps = []Vec{nil, {3, -7}}
	for trial := 0; trial < 40; trial++ {
		seqs := colSequences(rng, 7)
		q := seqs[0]
		g := gaps[trial%len(gaps)]
		bq := NewBatchQuery(FromSequence(q), g)
		arena := bq.NewBatch()
		for ci, cand := range seqs[1:] {
			exact := EGEDM(q, cand, g)
			for _, ub := range []float64{math.Inf(1), exact, exact * 0.75, exact * 0.25, 0} {
				e0, c0 := TotalEvals(), DPCells()
				wantD, wantAb := EGEDWithUB(q, cand, GapConstant, g, ub)
				e1, c1 := TotalEvals(), DPCells()
				gotD, gotAb := arena.DistanceUB(FromSequence(cand), ub)
				e2, c2 := TotalEvals(), DPCells()
				if gotAb != wantAb || math.Float64bits(gotD) != math.Float64bits(wantD) {
					t.Fatalf("trial %d cand %d ub=%v: batch=(%v,%v) per-pair=(%v,%v)",
						trial, ci, ub, gotD, gotAb, wantD, wantAb)
				}
				if e2-e1 != e1-e0 || c2-c1 != c1-c0 {
					t.Fatalf("trial %d cand %d ub=%v: accounting differs: batch evals=%d cells=%d, per-pair evals=%d cells=%d",
						trial, ci, ub, e2-e1, c2-c1, e1-e0, c1-c0)
				}
			}
		}
	}
}

// TestBatchEGEDUB checks the bulk convenience form against the per-pair
// kernel on one shared threshold.
func TestBatchEGEDUB(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	seqs := colSequences(rng, 10)
	q := seqs[0]
	cands := seqs[1:]
	blocks := FromSequences(cands)
	ds, ab := BatchEGEDUB(FromSequence(q), nil, blocks, 120)
	for i, cand := range cands {
		wantD, wantAb := EGEDWithUB(q, cand, GapConstant, nil, 120)
		if ab[i] != wantAb || math.Float64bits(ds[i]) != math.Float64bits(wantD) {
			t.Fatalf("cand %d: batch=(%v,%v) want (%v,%v)", i, ds[i], ab[i], wantD, wantAb)
		}
	}
}

// TestBatchCascadeMatchesDistanceUB: the cascade's batch entry point must
// agree with its per-pair DistanceUB (the property search relies on).
func TestBatchCascadeMatchesDistanceUB(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	seqs := colSequences(rng, 8)
	casc := EGEDMCascade(Vec{1, 1})
	bc, ok := casc.(BatchCascade)
	if !ok {
		t.Fatal("EGEDMCascade does not implement BatchCascade")
	}
	q := seqs[0]
	arena := bc.BatchQuery(q).NewBatch()
	for i, cand := range seqs[1:] {
		for _, ub := range []float64{math.Inf(1), 50} {
			wantD, wantAb := casc.DistanceUB(q, cand, ub)
			gotD, gotAb := arena.DistanceUB(FromSequence(cand), ub)
			if gotAb != wantAb || math.Float64bits(gotD) != math.Float64bits(wantD) {
				t.Fatalf("cand %d ub=%v: batch=(%v,%v) cascade=(%v,%v)", i, ub, gotD, gotAb, wantD, wantAb)
			}
		}
	}
}

// TestQuantEncodeBrackets: a Valid code's dequantized interval always
// contains the record's true axis extent — the admissibility precondition,
// including under adversarial grid/box misalignment.
func TestQuantEncodeBrackets(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	for trial := 0; trial < 200; trial++ {
		boxes := make([]Box, 1+rng.Intn(8))
		for i := range boxes {
			a, b := rng.NormFloat64()*100, rng.NormFloat64()*100
			boxes[i] = Box{Min: Vec{math.Min(a, b), -1}, Max: Vec{math.Max(a, b), 1}}
		}
		g := BuildQuantGrid(boxes)
		if !g.Ok {
			t.Fatalf("trial %d: no grid from %d non-empty boxes", trial, len(boxes))
		}
		for i, b := range boxes {
			c := g.Encode(b)
			if !c.Valid {
				t.Fatalf("trial %d box %d: in-range box failed to encode", trial, i)
			}
			if !(g.Dequant(c.Lo) <= b.Min[g.Axis]) || !(g.Dequant(c.Hi) >= b.Max[g.Axis]) {
				t.Fatalf("trial %d box %d: code [%v,%v] does not bracket extent [%v,%v]",
					trial, i, g.Dequant(c.Lo), g.Dequant(c.Hi), b.Min[g.Axis], b.Max[g.Axis])
			}
		}
		// A box outside the grid must come back invalid, not wrong.
		far := Box{Min: Vec{g.Lo - 1e6, 0}, Max: Vec{g.Lo - 1e5, 0}}
		if c := g.Encode(far); c.Valid && g.Dequant(c.Lo) > far.Min[0] {
			t.Fatalf("trial %d: out-of-range box encoded non-bracketing code", trial)
		}
	}
}

// TestQuantLBAdmissible is the quant tier's load-bearing inequality:
// LBQuant <= LBEnvelope bit-for-bit for every Valid code, so every record
// the quant tier prunes the envelope tier would also have pruned (which is
// why search may count quant prunes as envelope prunes without changing
// SearchStats).
func TestQuantLBAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(406))
	for _, g := range []Vec{nil, {2, -3}} {
		casc := EGEDMCascade(g)
		qc, ok := casc.(QuantCascade)
		if !ok {
			t.Fatal("EGEDMCascade does not implement QuantCascade")
		}
		for trial := 0; trial < 60; trial++ {
			seqs := colSequences(rng, 10)
			var boxes []Box
			var sums []Summary
			for _, s := range seqs[1:] {
				sum := casc.Summarize(s)
				sums = append(sums, sum)
				boxes = append(boxes, sum.Box)
			}
			grid := BuildQuantGrid(boxes)
			q := seqs[0]
			gaps := qc.QueryGaps(q)
			for i, s := range seqs[1:] {
				code := grid.Encode(sums[i].Box)
				if !grid.Ok || !code.Valid {
					continue
				}
				lbq := qc.LBQuant(q, gaps, grid, code)
				lbe := casc.LBEnvelope(q, sums[i])
				if lbq > lbe {
					t.Fatalf("g=%v trial %d cand %d: LBQuant %v > LBEnvelope %v", g, trial, i, lbq, lbe)
				}
				if exact := casc.Metric(q, s); lbq > exact+1e-9*math.Max(1, exact) {
					t.Fatalf("g=%v trial %d cand %d: LBQuant %v exceeds exact %v", g, trial, i, lbq, exact)
				}
			}
		}
	}
}

// TestBuildQuantGridEdgeCases: degenerate inputs must disable the tier
// (Ok=false) rather than produce a bogus grid.
func TestBuildQuantGridEdgeCases(t *testing.T) {
	if g := BuildQuantGrid(nil); g.Ok {
		t.Fatal("grid from no boxes is Ok")
	}
	if g := BuildQuantGrid([]Box{{}, {}}); g.Ok {
		t.Fatal("grid from empty boxes is Ok")
	}
	nan := math.NaN()
	if g := BuildQuantGrid([]Box{{Min: Vec{nan}, Max: Vec{nan}}}); g.Ok {
		t.Fatal("grid from NaN box is Ok")
	}
	// A single degenerate (zero-spread) box still yields a usable grid.
	g := BuildQuantGrid([]Box{{Min: Vec{5, 0}, Max: Vec{5, 0}}})
	if !g.Ok || g.Step != 0 {
		t.Fatalf("degenerate grid = %+v", g)
	}
	c := g.Encode(Box{Min: Vec{5, 0}, Max: Vec{5, 0}})
	if !c.Valid {
		t.Fatal("degenerate box failed to encode on its own grid")
	}
	if bad := g.Encode(Box{Min: Vec{6, 0}, Max: Vec{7, 0}}); bad.Valid {
		t.Fatal("box outside a zero-step grid encoded Valid")
	}
	// Mismatched-dimension box: Encode must refuse, not index out of range.
	wide := BuildQuantGrid([]Box{{Min: Vec{0, 0, 0}, Max: Vec{1, 2, 9}}})
	if wide.Axis != 2 {
		t.Fatalf("widest-spread axis = %d, want 2", wide.Axis)
	}
	if c := wide.Encode(Box{Min: Vec{0}, Max: Vec{1}}); c.Valid {
		t.Fatal("short box encoded Valid on a 3-D grid")
	}
}
