package dist

import "math"

// This file implements the batched EGED_M kernel for columnar leaf scans:
// one query is prepared once (BatchQuery), then streamed against many
// candidate Blocks through a reused arena (Batch) with per-candidate
// thresholds. Relative to calling EGEDWithUB per pair, the batch form
//
//   - hoists the query-side gap costs: under GapConstant, every row i of
//     every candidate's DP pays gapCost(a_i, g) twice (cur[0] and the gapA
//     arm); the batch computes Norm(a_i, g) once per query instead of once
//     per cell — the identical float64, just not recomputed;
//   - hoists the candidate-side gap costs the same way (once per candidate
//     row instead of once per DP row);
//   - keeps all scratch (two rolling rows + the gap-cost rows) in one
//     arena owned by the caller, eliminating the per-pair sync.Pool
//     round-trip.
//
// Per DP cell the inner loop drops from three Norm calls (three sqrts) to
// one. Because a hoisted value is the result of the same Norm call the
// per-pair kernel would make — merely cached — every cell value, every
// row minimum, the abandon decision, and the returned distance are
// bit-for-bit identical to EGEDWithUB(a, b, GapConstant, g, ub). The
// totalEvals / dpCells accounting is replicated exactly as well, so
// SearchStats and the benchmark counters cannot tell the kernels apart.

// BatchQuery is the immutable, shareable half of a batched computation:
// the query block, the resolved constant gap, and the hoisted per-row gap
// costs ga[i] = |a_i − g|. One BatchQuery may feed any number of Batch
// arenas concurrently.
type BatchQuery struct {
	q  Block
	g  Vec // resolved; nil only when the query is empty and no g was given
	ga []float64
}

// NewBatchQuery prepares a query block for batched evaluation under the
// constant-gap (EGED_M) model. A nil g means the zero vector, resolved
// against the query's dimension exactly as EGEDWithUB resolves it (when
// the query is empty the resolution is deferred to each candidate, again
// matching the per-pair kernel's dim fallback).
func NewBatchQuery(q Block, g Vec) *BatchQuery {
	bq := &BatchQuery{q: q, g: g}
	if bq.g == nil && q.Len() > 0 {
		bq.g = zeroVec(q.Dim())
	}
	if q.Len() > 0 {
		bq.ga = make([]float64, q.Len())
		for i := range bq.ga {
			bq.ga[i] = Norm(q.Row(i), bq.g)
		}
	}
	return bq
}

// Batch is the per-goroutine scratch arena of a batched computation: the
// two rolling DP rows plus the candidate gap-cost row, grown once and
// reused across every candidate streamed through it. A Batch must not be
// shared between goroutines; create one per leaf scan via NewBatch.
type Batch struct {
	bq        *BatchQuery
	prev, cur []float64
	gb        []float64
}

// NewBatch returns a fresh scratch arena bound to the query.
func (bq *BatchQuery) NewBatch() *Batch { return &Batch{bq: bq} }

// rows sizes the arena for a candidate of length n.
func (b *Batch) rows(n int) {
	if cap(b.prev) < n+1 {
		b.prev = make([]float64, n+1)
		b.cur = make([]float64, n+1)
	}
	b.prev, b.cur = b.prev[:n+1], b.cur[:n+1]
	if cap(b.gb) < n {
		b.gb = make([]float64, n)
	}
	b.gb = b.gb[:n]
}

// DistanceUB evaluates EGED_M(query, c) with early row abandoning at ub —
// bit-for-bit identical, in result, abandon decision, and eval/cell
// accounting, to EGEDWithUB(query, c, GapConstant, g, ub).
func (b *Batch) DistanceUB(c Block, ub float64) (d float64, abandoned bool) {
	totalEvals.Add(1)
	bq := b.bq
	m, n := bq.q.Len(), c.Len()
	if m == 0 && n == 0 {
		return 0, false
	}
	g := bq.g
	if g == nil {
		// Empty query with no explicit gap: EGEDWithUB falls back to the
		// candidate's dimension for the zero reference.
		g = zeroVec(c.Dim())
	}
	b.rows(n)
	prev, cur, gb := b.prev, b.cur, b.gb
	prev[0] = 0
	for j := 1; j <= n; j++ {
		gb[j-1] = Norm(c.Row(j-1), g)
		prev[j] = prev[j-1] + gb[j-1]
	}
	ga := bq.ga
	for i := 1; i <= m; i++ {
		gai := ga[i-1]
		ai := bq.q.Row(i - 1)
		cur[0] = prev[0] + gai
		rowMin := cur[0]
		for j := 1; j <= n; j++ {
			match := prev[j-1] + Norm(ai, c.Row(j-1))
			gapA := prev[j] + gai
			gapB := cur[j-1] + gb[j-1]
			cur[j] = math.Min(match, math.Min(gapA, gapB))
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		prev, cur = cur, prev
		if rowMin > ub {
			b.prev, b.cur = prev, cur
			dpCells.Add(int64(n) + int64(i)*int64(n+1))
			return rowMin, true
		}
	}
	b.prev, b.cur = prev, cur
	dpCells.Add(int64(n) + int64(m)*int64(n+1))
	return prev[n], false
}

// BatchCascade is an optional Cascade extension for metrics with a
// batched columnar kernel. BatchQuery prepares a query for streaming
// against candidate Blocks; the resulting Batch.DistanceUB must be
// bit-identical to the cascade's DistanceUB on the corresponding
// sequences. Search code type-asserts to it; cascades without it run the
// per-pair kernel.
type BatchCascade interface {
	Cascade
	BatchQuery(a Sequence) *BatchQuery
}

func (c egedmCascade) BatchQuery(a Sequence) *BatchQuery {
	return NewBatchQuery(FromSequence(a), c.g)
}

// BatchEGEDUB streams every candidate through one arena with a shared
// threshold — the convenience form for benchmarks and bulk rerank. It
// returns the per-candidate distances and abandon flags; entry i is
// exactly EGEDWithUB(q.Sequence(), cands[i].Sequence(), GapConstant, g, ub).
func BatchEGEDUB(q Block, g Vec, cands []Block, ub float64) (ds []float64, abandoned []bool) {
	ds = make([]float64, len(cands))
	abandoned = make([]bool, len(cands))
	b := NewBatchQuery(q, g).NewBatch()
	for i, c := range cands {
		ds[i], abandoned[i] = b.DistanceUB(c, ub)
	}
	return ds, abandoned
}
