package dist

import (
	"context"
	"errors"
	"fmt"

	"strgindex/internal/parallel"
)

// ErrMatrix tags failures of the batch distance-matrix helpers, so callers
// can distinguish a poisoned matrix (for example a dimension mismatch
// inside a worker) from their own errors with errors.Is.
var ErrMatrix = errors.New("dist: matrix computation failed")

// PairwiseMatrix computes the full symmetric distance matrix
// d[i][j] = m(seqs[i], seqs[j]) over the given worker budget (0 = one
// worker per CPU, 1 = sequential). Only the strict upper triangle is
// evaluated — d[j][i] mirrors d[i][j] and the diagonal is 0, halving the
// O(n²) metric evaluations of EM clustering and index construction.
//
// A panic inside the metric (such as Norm's dimension-mismatch panic) is
// recovered by the pool and returned as an error wrapping ErrMatrix
// instead of crashing the process; the matrix is invalid in that case.
// Results are identical to a sequential evaluation: every cell is written
// by exactly one worker.
func PairwiseMatrix(seqs []Sequence, m Metric, workers int) ([][]float64, error) {
	return PairwiseMatrixCtx(context.Background(), seqs, m, workers)
}

// PairwiseMatrixCtx is PairwiseMatrix with cancellation: a done context
// abandons the remaining rows and returns ctx.Err().
func PairwiseMatrixCtx(ctx context.Context, seqs []Sequence, m Metric, workers int) ([][]float64, error) {
	n := len(seqs)
	d := make([][]float64, n)
	cells := make([]float64, n*n)
	for i := range d {
		d[i] = cells[i*n : (i+1)*n]
	}
	// Row i owns cells d[i][j] and their mirrors d[j][i] for j > i; rows
	// are claimed in order, so the long rows (low i) start first and the
	// pool self-balances the triangle's skew.
	err := parallel.ForEachCtx(ctx, workers, n, func(i int) error {
		row := d[i]
		for j := i + 1; j < n; j++ {
			v := m(seqs[i], seqs[j])
			row[j] = v
			d[j][i] = v
		}
		return nil
	})
	if err != nil {
		return nil, matrixErr(err)
	}
	return d, nil
}

// CrossMatrix computes the rectangular distance matrix
// d[i][j] = m(a[i], b[j]) in parallel over the given worker budget — the
// item × centroid pass at the heart of every EM/KM/KHM iteration and of
// the index's cluster descent. Error semantics match PairwiseMatrix.
func CrossMatrix(a, b []Sequence, m Metric, workers int) ([][]float64, error) {
	na, nb := len(a), len(b)
	d := make([][]float64, na)
	cells := make([]float64, na*nb)
	for i := range d {
		d[i] = cells[i*nb : (i+1)*nb]
	}
	err := parallel.ForEach(workers, na, func(i int) error {
		row := d[i]
		for j := 0; j < nb; j++ {
			row[j] = m(a[i], b[j])
		}
		return nil
	})
	if err != nil {
		return nil, matrixErr(err)
	}
	return d, nil
}

func matrixErr(err error) error {
	var pe *parallel.PanicError
	if errors.As(err, &pe) {
		return fmt.Errorf("%w: %v (sequence %d)", ErrMatrix, pe.Value, pe.Index)
	}
	return fmt.Errorf("%w: %w", ErrMatrix, err)
}
