package dist

import (
	"context"
	"errors"
	"fmt"

	"strgindex/internal/parallel"
)

// ErrMatrix tags failures of the batch distance-matrix helpers, so callers
// can distinguish a poisoned matrix (for example a dimension mismatch
// inside a worker) from their own errors with errors.Is.
var ErrMatrix = errors.New("dist: matrix computation failed")

// PairwiseMatrix computes the full symmetric distance matrix
// d[i][j] = m(seqs[i], seqs[j]) over the given worker budget (0 = one
// worker per CPU, 1 = sequential). Only the strict upper triangle is
// evaluated — d[j][i] mirrors d[i][j] and the diagonal is 0, halving the
// O(n²) metric evaluations of EM clustering and index construction.
//
// A panic inside the metric (such as Norm's dimension-mismatch panic) is
// recovered by the pool and returned as an error wrapping ErrMatrix
// instead of crashing the process; the matrix is invalid in that case.
// Results are identical to a sequential evaluation: every cell is written
// by exactly one worker.
func PairwiseMatrix(seqs []Sequence, m Metric, workers int) ([][]float64, error) {
	return PairwiseMatrixCtx(context.Background(), seqs, m, workers)
}

// minParallelCells is the upper-triangle size below which PairwiseMatrix
// runs sequentially: for small matrices the pool's goroutine startup and
// work-claim traffic costs more than the distance evaluations it spreads
// (the workers=2 regression in BENCH_parallel.json came from exactly this
// per-row claim overhead on short rows).
const minParallelCells = 512

// PairwiseMatrixCtx is PairwiseMatrix with cancellation: a done context
// abandons the remaining rows and returns ctx.Err().
func PairwiseMatrixCtx(ctx context.Context, seqs []Sequence, m Metric, workers int) ([][]float64, error) {
	n := len(seqs)
	d := make([][]float64, n)
	cells := make([]float64, n*n)
	for i := range d {
		d[i] = cells[i*n : (i+1)*n]
	}
	// fillRows evaluates the upper-triangle cells of rows [lo, hi); every
	// cell is written by exactly one task, so results are identical to a
	// sequential evaluation. Workers touch only their own rows of the
	// shared backing array — the mirror cells d[j][i] land scattered
	// across other workers' cache lines and are filled in one sequential
	// pass afterwards instead, so the parallel section never ping-pongs
	// lines between cores (the false sharing that kept this benchmark
	// flat across worker counts).
	fillRows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := d[i]
			for j := i + 1; j < n; j++ {
				row[j] = m(seqs[i], seqs[j])
			}
		}
	}
	w := parallel.Workers(workers)
	total := n * (n - 1) / 2
	var err error
	if w <= 1 || total < minParallelCells {
		// Sequential fallback, still claiming row by row through the
		// pool's sequential path so cancellation is observed per row.
		err = parallel.ForEachCtx(ctx, 1, n, func(i int) error {
			fillRows(i, i+1)
			return nil
		})
	} else {
		// Each task owns a contiguous block of rows holding roughly equal
		// upper-triangle cell mass — a handful of claims per worker
		// instead of one per row, with ~4 blocks per worker so the pool
		// can still rebalance when metric costs are skewed.
		chunks := rowChunks(n, 4*w)
		err = parallel.ForEachCtx(ctx, workers, len(chunks), func(c int) error {
			fillRows(chunks[c][0], chunks[c][1])
			return nil
		})
	}
	if err != nil {
		return nil, matrixErr(err)
	}
	// Mirror pass: O(n²) float copies next to O(n² · mn) DP work above.
	for i := 0; i < n; i++ {
		row := d[i]
		for j := i + 1; j < n; j++ {
			d[j][i] = row[j]
		}
	}
	return d, nil
}

// rowChunks splits the strict upper triangle of an n×n matrix into at
// most maxChunks contiguous [lo, hi) row blocks of roughly equal cell
// mass (row i holds n−1−i cells, so early blocks span few rows and late
// blocks span many).
func rowChunks(n, maxChunks int) [][2]int {
	total := n * (n - 1) / 2
	if maxChunks < 1 {
		maxChunks = 1
	}
	per := (total + maxChunks - 1) / maxChunks
	if per < 1 {
		per = 1
	}
	// One exact allocation: the mass loop emits at most ⌈total/per⌉ + 1
	// blocks, so growing by append would only re-copy the backing array.
	chunks := make([][2]int, 0, total/per+2)
	lo, mass := 0, 0
	for i := 0; i < n; i++ {
		mass += n - 1 - i
		if mass >= per {
			chunks = append(chunks, [2]int{lo, i + 1})
			lo, mass = i+1, 0
		}
	}
	if lo < n {
		chunks = append(chunks, [2]int{lo, n})
	}
	return chunks
}

// CrossMatrix computes the rectangular distance matrix
// d[i][j] = m(a[i], b[j]) in parallel over the given worker budget — the
// item × centroid pass at the heart of every EM/KM/KHM iteration and of
// the index's cluster descent. Error semantics match PairwiseMatrix.
func CrossMatrix(a, b []Sequence, m Metric, workers int) ([][]float64, error) {
	na, nb := len(a), len(b)
	d := make([][]float64, na)
	cells := make([]float64, na*nb)
	for i := range d {
		d[i] = cells[i*nb : (i+1)*nb]
	}
	err := parallel.ForEach(workers, na, func(i int) error {
		row := d[i]
		for j := 0; j < nb; j++ {
			row[j] = m(a[i], b[j])
		}
		return nil
	})
	if err != nil {
		return nil, matrixErr(err)
	}
	return d, nil
}

func matrixErr(err error) error {
	var pe *parallel.PanicError
	if errors.As(err, &pe) {
		return fmt.Errorf("%w: %v (sequence %d)", ErrMatrix, pe.Value, pe.Index)
	}
	return fmt.Errorf("%w: %w", ErrMatrix, err)
}
