package dist

import "math"

// This file implements the quantized 8-bit summary tier that sits ahead
// of the envelope bound in the filter cascade. Each leaf carries one
// QuantGrid — a 256-step 1-D grid along the leaf's widest-spread axis —
// and each record a 2-byte QuantCode: its bounding-box extent on that
// axis, quantized *outward*. Scanning codes touches 2 bytes per record
// instead of the record's float columns, so most candidates die before
// any cache line of sequence data is loaded.
//
// Admissibility, and why the tier is invisible in SearchStats: LBQuant is
// the envelope bound with the box replaced by its 1-D outward-quantized
// shadow, so term by term
//
//	axisProj(a_i, dq(code)) <= axisProj(a_i, box) <= boxDist(a_i, box)
//
// (the dequantized interval contains the true extent; one squared axis
// offset never exceeds the full sum under the monotone float operations),
// and the min against the same gap cost and the monotone float addition
// preserve <= through the sum. Hence LBQuant <= LBEnvelope bit-for-bit:
// every record the quant tier prunes, the envelope tier would have pruned
// too. Search counts quant prunes as envelope prunes, so SearchStats are
// identical with the tier on or off — it only changes how cheaply the
// same records die. (A separate process-wide counter, see QuantPruned in
// internal/index, observes the tier's hit rate.)

// QuantGrid is a leaf's shared quantization grid: 256 edge values
// dq(c) = Lo + c·Step along one axis. The zero value (Ok=false) disables
// the tier for the leaf.
type QuantGrid struct {
	Axis int
	Lo   float64
	Step float64
	Ok   bool
}

// Dequant returns edge value c of the grid.
func (g QuantGrid) Dequant(c uint8) float64 { return g.Lo + float64(c)*g.Step }

// QuantCode is one record's quantized extent on the grid's axis. Valid
// codes satisfy Dequant(Lo) <= box.Min[axis] and Dequant(Hi) >=
// box.Max[axis]; Valid=false (empty record, record outside the grid, or
// no grid) makes the tier a no-op for that record.
type QuantCode struct {
	Lo, Hi uint8
	Valid  bool
}

// BuildQuantGrid fits a grid to a set of record envelopes, choosing the
// axis with the widest total spread. Empty boxes are skipped; if no box
// has extent the grid is not Ok.
func BuildQuantGrid(boxes []Box) QuantGrid {
	dim := 0
	for _, b := range boxes {
		if len(b.Min) > 0 {
			dim = len(b.Min)
			break
		}
	}
	if dim == 0 {
		return QuantGrid{}
	}
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	first := true
	for _, b := range boxes {
		if len(b.Min) != dim {
			continue
		}
		for k := 0; k < dim; k++ {
			if first || b.Min[k] < lo[k] {
				lo[k] = b.Min[k]
			}
			if first || b.Max[k] > hi[k] {
				hi[k] = b.Max[k]
			}
		}
		first = false
	}
	if first {
		return QuantGrid{}
	}
	axis, spread := 0, hi[0]-lo[0]
	for k := 1; k < dim; k++ {
		if s := hi[k] - lo[k]; s > spread {
			axis, spread = k, s
		}
	}
	if !(spread >= 0) { // NaN or negative spread: no usable grid
		return QuantGrid{}
	}
	// spread/255 can round down, leaving Dequant(255) just below the fitted
	// maximum — which would make the widest record in every leaf fail to
	// encode. Nudge the step up until the top edge covers the range.
	step := spread / 255
	for lo[axis]+255*step < hi[axis] {
		step = math.Nextafter(step, math.Inf(1))
	}
	return QuantGrid{Axis: axis, Lo: lo[axis], Step: step, Ok: true}
}

// Encode quantizes a record envelope outward onto the grid. Float
// rounding in the forward scale is repaired by the fixup loops below, so
// a Valid code always brackets the true extent — the admissibility
// precondition. Records that do not fit the grid (inserted after the grid
// was fitted, outside its range) come back Valid=false and simply fall
// through to the envelope tier.
func (g QuantGrid) Encode(b Box) QuantCode {
	if !g.Ok || g.Axis >= len(b.Min) {
		return QuantCode{}
	}
	min, max := b.Min[g.Axis], b.Max[g.Axis]
	var lo, hi int
	if g.Step > 0 {
		lo = int((min - g.Lo) / g.Step)
		hi = int((max-g.Lo)/g.Step) + 1
	}
	lo = clampCode(lo)
	hi = clampCode(hi)
	for lo > 0 && g.Dequant(uint8(lo)) > min {
		lo--
	}
	for hi < 255 && g.Dequant(uint8(hi)) < max {
		hi++
	}
	if !(g.Dequant(uint8(lo)) <= min) || !(g.Dequant(uint8(hi)) >= max) {
		return QuantCode{}
	}
	return QuantCode{Lo: uint8(lo), Hi: uint8(hi), Valid: true}
}

func clampCode(c int) int {
	if c < 0 {
		return 0
	}
	if c > 255 {
		return 255
	}
	return c
}

// QuantCascade is an optional Cascade extension for metrics with a
// quantized tier. Search code type-asserts to it; cascades without it
// (DTW, ExactOnly) simply skip the tier.
type QuantCascade interface {
	Cascade
	// QueryGaps precomputes the per-sample gap costs |a_i − g| of a query
	// — the values LBQuant mins against, hoisted once per query.
	QueryGaps(a Sequence) []float64
	// LBQuant is the quantized envelope bound; it must be <= LBEnvelope
	// of the same (query, record) pair bit-for-bit whenever code.Valid.
	LBQuant(a Sequence, gaps []float64, grid QuantGrid, code QuantCode) float64
}

func (c egedmCascade) QueryGaps(a Sequence) []float64 {
	if len(a) == 0 {
		return nil
	}
	gaps := make([]float64, len(a))
	for i, v := range a {
		gaps[i] = gapNorm(v, c.g)
	}
	return gaps
}

func (c egedmCascade) LBQuant(a Sequence, gaps []float64, grid QuantGrid, code QuantCode) float64 {
	lo, hi := grid.Dequant(code.Lo), grid.Dequant(code.Hi)
	axis := grid.Axis
	var lb float64
	for i, v := range a {
		d := 0.0
		if x := v[axis]; x < lo {
			d = lo - x
		} else if x > hi {
			d = x - hi
		}
		// sqrt(d·d) rather than d: boxDist accumulates squared offsets
		// before its sqrt, and only the squared form chains <= through
		// the float operations without corner cases.
		t := math.Sqrt(d * d)
		if gaps[i] < t {
			t = gaps[i]
		}
		lb += t
	}
	return lb
}
