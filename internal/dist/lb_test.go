package dist

import (
	"math"
	"math/rand"
	"testing"
)

// lbSequences generates random sequences including empties and singletons,
// the boundary cases of every bound.
func lbSequences(n int, seed int64) []Sequence {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sequence, n)
	for i := range out {
		l := rng.Intn(10) // 0..9 — empties included on purpose
		s := make(Sequence, l)
		for j := range s {
			s[j] = Vec{rng.Float64()*200 - 100, rng.Float64()*200 - 100}
		}
		out[i] = s
	}
	return out
}

// testCascadeAdmissible checks both lower bounds against the exact metric
// over all sequence pairs.
func testCascadeAdmissible(t *testing.T, name string, c Cascade, seqs []Sequence) {
	t.Helper()
	sums := make([]Summary, len(seqs))
	for i, s := range seqs {
		sums[i] = c.Summarize(s)
	}
	for i, a := range seqs {
		for j, b := range seqs {
			d := c.Metric(a, b)
			if lb := c.LBQuick(a, b, sums[i], sums[j]); lb > d {
				t.Errorf("%s: LBQuick(%d, %d) = %v > metric %v", name, i, j, lb, d)
			}
			if lb := c.LBEnvelope(a, sums[j]); lb > d {
				t.Errorf("%s: LBEnvelope(%d, %d) = %v > metric %v", name, i, j, lb, d)
			}
		}
	}
}

func TestLowerBoundsAdmissible(t *testing.T) {
	seqs := lbSequences(40, 101)
	testCascadeAdmissible(t, "EGEDM(nil)", EGEDMCascade(nil), seqs)
	testCascadeAdmissible(t, "EGEDM(g)", EGEDMCascade(Vec{5, -3}), seqs)
	testCascadeAdmissible(t, "DTW", DTWCascade(), seqs)
	testCascadeAdmissible(t, "ExactOnly", ExactOnly(EGEDMZero), seqs)
}

// TestUBInfEqualsExact verifies the ub=+Inf contract bit-for-bit: the
// early-abandoning kernels ARE the exact kernels when the threshold can
// never fire, which is what makes delegating the exact path to them safe.
func TestUBInfEqualsExact(t *testing.T) {
	seqs := lbSequences(30, 102)
	g := Vec{2, 7}
	inf := math.Inf(1)
	for i, a := range seqs {
		for j, b := range seqs {
			for name, pair := range map[string][2]float64{
				"EGEDMZero": {EGEDMZero(a, b), first(EGEDMZeroUB(a, b, inf))},
				"EGEDM(g)":  {EGEDM(a, b, g), first(EGEDMUB(a, b, g, inf))},
				"ERP":       {ERP(a, b, g), first(ERPUB(a, b, g, inf))},
				"DTW":       {DTW(a, b), first(DTWUB(a, b, inf))},
			} {
				if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
					t.Fatalf("%s(%d, %d): exact %v != UB(+Inf) %v", name, i, j, pair[0], pair[1])
				}
			}
			if _, abandoned := EGEDMUB(a, b, g, inf); abandoned {
				t.Fatalf("EGEDMUB(%d, %d, +Inf) abandoned", i, j)
			}
			if _, abandoned := DTWUB(a, b, inf); abandoned {
				t.Fatalf("DTWUB(%d, %d, +Inf) abandoned", i, j)
			}
		}
	}
}

func first(d float64, _ bool) float64 { return d }

// TestUBAbandonContract: when the kernel abandons, the returned row
// minimum strictly exceeds the threshold and never exceeds the true
// distance; when it completes, the value is the exact distance bit-for-bit.
func TestUBAbandonContract(t *testing.T) {
	seqs := lbSequences(25, 103)
	rng := rand.New(rand.NewSource(104))
	for i, a := range seqs {
		for j, b := range seqs {
			exact := EGEDMZero(a, b)
			ub := rng.Float64() * 300
			d, abandoned := EGEDMZeroUB(a, b, ub)
			if abandoned {
				if !(d > ub) {
					t.Fatalf("(%d, %d): abandoned with rowMin %v <= ub %v", i, j, d, ub)
				}
				if d > exact {
					t.Fatalf("(%d, %d): abandoned rowMin %v > exact %v (not a lower bound)", i, j, d, exact)
				}
			} else if math.Float64bits(d) != math.Float64bits(exact) {
				t.Fatalf("(%d, %d): completed with %v, exact is %v", i, j, d, exact)
			}

			exact = DTW(a, b)
			d, abandoned = DTWUB(a, b, ub)
			if abandoned {
				if !(d > ub) || d > exact {
					t.Fatalf("DTW(%d, %d): abandoned d=%v ub=%v exact=%v", i, j, d, ub, exact)
				}
			} else if math.Float64bits(d) != math.Float64bits(exact) {
				t.Fatalf("DTW(%d, %d): completed with %v, exact is %v", i, j, d, exact)
			}
		}
	}
}

// TestUBNeverAbandonsBelowThreshold: a threshold at or above the true
// distance must never trigger abandonment — that is exactly the guarantee
// the k-NN heap relies on for records that belong in the result set.
func TestUBNeverAbandonsBelowThreshold(t *testing.T) {
	seqs := lbSequences(25, 105)
	for _, a := range seqs {
		for _, b := range seqs {
			exact := EGEDMZero(a, b)
			if d, abandoned := EGEDMZeroUB(a, b, exact); abandoned {
				t.Fatalf("abandoned at ub == exact distance %v (returned %v)", exact, d)
			} else if math.Float64bits(d) != math.Float64bits(exact) {
				t.Fatalf("ub == exact: got %v, want %v", d, exact)
			}
			exact = DTW(a, b)
			if d, abandoned := DTWUB(a, b, exact); abandoned {
				t.Fatalf("DTW abandoned at ub == exact distance %v (returned %v)", exact, d)
			}
		}
	}
}

func TestSummarizeEmptyAndGapSum(t *testing.T) {
	c := EGEDMCascade(nil)
	empty := c.Summarize(nil)
	if empty.Len != 0 || empty.GapSum != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
	// Distance to the empty sequence is exactly the gap sum.
	s := seq2([2]float64{3, 4}, [2]float64{-6, 8}, [2]float64{0, 5})
	sum := c.Summarize(s)
	if got := EGEDMZero(s, nil); math.Float64bits(got) != math.Float64bits(sum.GapSum) {
		t.Fatalf("EGEDM(s, empty) = %v, GapSum = %v — not bit-identical", got, sum.GapSum)
	}
}

func TestBoxDistInsideAndMonotone(t *testing.T) {
	b := Box{Min: Vec{0, 0}, Max: Vec{10, 10}}
	if d := b.boxDist(Vec{5, 5}); d != 0 {
		t.Fatalf("inside point dist = %v", d)
	}
	if d := b.boxDist(Vec{13, 14}); !almostEq(d, 5) {
		t.Fatalf("corner dist = %v, want 5", d)
	}
	// boxDist is a lower bound on the distance to any member point.
	rng := rand.New(rand.NewSource(106))
	s := make(Sequence, 20)
	for i := range s {
		s[i] = Vec{rng.Float64() * 50, rng.Float64() * 50}
	}
	box := summarizeBox(s)
	for trial := 0; trial < 200; trial++ {
		v := Vec{rng.Float64()*200 - 75, rng.Float64()*200 - 75}
		bd := box.boxDist(v)
		for _, u := range s {
			if n := Norm(v, u); bd > n {
				t.Fatalf("boxDist %v > norm %v", bd, n)
			}
		}
	}
}

func TestHashSequence(t *testing.T) {
	a := seq2([2]float64{1, 2}, [2]float64{3, 4})
	b := seq2([2]float64{1, 2}, [2]float64{3, 4})
	if HashSequence(a) != HashSequence(b) {
		t.Fatal("equal sequences hash differently")
	}
	c := seq2([2]float64{1, 2}, [2]float64{3, 4.0000000001})
	if HashSequence(a) == HashSequence(c) {
		t.Fatal("distinct sequences collide")
	}
	// Length structure matters: [[1,2],[3,4]] vs [[1,2,3,4]].
	flat := Sequence{Vec{1, 2, 3, 4}}
	if HashSequence(a) == HashSequence(flat) {
		t.Fatal("shape-distinct sequences collide")
	}
	if HashSequence(nil) == HashSequence(Sequence{Vec{}}) {
		t.Fatal("empty sequence collides with one empty vector")
	}
}

func TestDPCellsCounts(t *testing.T) {
	a := lbSequences(1, 107)[0]
	if len(a) == 0 {
		t.Skip("unlucky empty")
	}
	before := DPCells()
	EGEDMZero(a, a)
	if got := DPCells() - before; got <= 0 {
		t.Fatalf("DPCells delta = %d after a full evaluation", got)
	}
	// Early abandonment must record fewer cells than a full evaluation.
	long := make(Sequence, 60)
	far := make(Sequence, 60)
	for i := range long {
		long[i] = Vec{float64(i), 0}
		far[i] = Vec{float64(i), 1e6}
	}
	full := DPCells()
	EGEDMZero(long, far)
	fullCells := DPCells() - full
	ab := DPCells()
	if _, abandoned := EGEDMZeroUB(long, far, 1); !abandoned {
		t.Fatal("expected abandonment at tiny threshold")
	}
	if got := DPCells() - ab; got >= fullCells {
		t.Fatalf("abandoned evaluation recorded %d cells, full recorded %d", got, fullCells)
	}
}

func TestRowChunksCoverAllRows(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 48, 100} {
		for _, maxChunks := range []int{0, 1, 2, 5, 16, 1000} {
			chunks := rowChunks(n, maxChunks)
			covered := make([]bool, n)
			prev := 0
			for _, c := range chunks {
				if c[0] != prev || c[1] <= c[0] || c[1] > n {
					t.Fatalf("n=%d maxChunks=%d: bad chunk %v (prev end %d)", n, maxChunks, c, prev)
				}
				for i := c[0]; i < c[1]; i++ {
					covered[i] = true
				}
				prev = c[1]
			}
			if n > 0 && prev != n {
				t.Fatalf("n=%d maxChunks=%d: rows end at %d", n, maxChunks, prev)
			}
			for i, ok := range covered {
				if !ok {
					t.Fatalf("n=%d maxChunks=%d: row %d uncovered", n, maxChunks, i)
				}
			}
			if maxChunks >= 1 && len(chunks) > maxChunks+1 {
				t.Fatalf("n=%d maxChunks=%d: %d chunks", n, maxChunks, len(chunks))
			}
		}
	}
}
