package dist

import "fmt"

// This file implements the columnar execution layout under the distance
// engine: a Block is one sequence's attribute samples flattened into a
// single contiguous float64 buffer, row-major (sample i's vector occupies
// Data[i*Dim : (i+1)*Dim]). The DP kernels in batch.go stream Blocks
// instead of chasing []Vec slice headers, so a leaf scan walks memory
// linearly — the layout the hardware prefetcher wants.
//
// Blocks carry exactly the float64 bits of the Sequence they were built
// from, and the block kernels mirror the sequence kernels' arithmetic
// operation for operation, so switching layouts never moves a single bit
// of any distance value (property- and fuzz-tested in columnar_test.go
// and fuzz_test.go).

// Block is the columnar form of a Sequence: n samples of dim float64s in
// one contiguous buffer. The zero Block is an empty sequence.
type Block struct {
	data []float64
	n    int
	dim  int
}

// Len returns the number of samples.
func (b Block) Len() int { return b.n }

// Dim returns the per-sample dimensionality (0 for an empty block).
func (b Block) Dim() int { return b.dim }

// Data returns the backing buffer, row-major. Callers must not mutate it:
// sequences restored as views (see Sequence) share this memory.
func (b Block) Data() []float64 { return b.data }

// Row returns sample i as a Vec view into the buffer.
func (b Block) Row(i int) Vec {
	return Vec(b.data[i*b.dim : (i+1)*b.dim])
}

// FromSequence flattens s into a freshly allocated Block. It panics if the
// sample dimensions are ragged — such a sequence would panic inside Norm
// anyway, so the layout conversion surfaces the programming error at
// build time instead of mid-query.
func FromSequence(s Sequence) Block {
	if len(s) == 0 {
		return Block{}
	}
	dim := len(s[0])
	b := Block{data: make([]float64, len(s)*dim), n: len(s), dim: dim}
	for i, v := range s {
		if len(v) != dim {
			panic(fmt.Sprintf("dist: ragged sequence: sample %d has dim %d, want %d", i, len(v), dim))
		}
		copy(b.data[i*dim:(i+1)*dim], v)
	}
	return b
}

// BlockOf wraps an existing row-major buffer as a Block without copying —
// the snapshot-load path, where the container already holds the flattened
// column data. len(data) must equal n*dim.
func BlockOf(data []float64, n, dim int) (Block, error) {
	if n < 0 || dim < 0 || len(data) != n*dim {
		return Block{}, fmt.Errorf("dist: block of %d floats cannot hold %d×%d samples", len(data), n, dim)
	}
	if n == 0 {
		return Block{}, nil
	}
	return Block{data: data, n: n, dim: dim}, nil
}

// Sequence returns s as a []Vec of views sharing the block's buffer: the
// float64 bits are the originals, only the slice headers are new. An empty
// block returns nil, matching the zero Sequence. The views keep every
// pointer-based code path (summaries, hashes, snapshots, non-columnar
// kernels) working unchanged on columnar storage — one copy of the data,
// two access paths.
func (b Block) Sequence() Sequence {
	if b.n == 0 {
		return nil
	}
	s := make(Sequence, b.n)
	for i := range s {
		s[i] = b.Row(i)
	}
	return s
}

// FromSequences flattens each sequence into a sub-block of one shared
// backing buffer — the per-leaf arena built at ingest and snapshot load.
func FromSequences(seqs []Sequence) []Block {
	total := 0
	for _, s := range seqs {
		total += len(s) * s.Dim()
	}
	buf := make([]float64, 0, total)
	out := make([]Block, len(seqs))
	for i, s := range seqs {
		if len(s) == 0 {
			continue
		}
		dim := len(s[0])
		start := len(buf)
		for j, v := range s {
			if len(v) != dim {
				panic(fmt.Sprintf("dist: ragged sequence: sample %d has dim %d, want %d", j, len(v), dim))
			}
			buf = append(buf, v...)
		}
		out[i] = Block{data: buf[start:len(buf):len(buf)], n: len(s), dim: dim}
	}
	return out
}

// ToSequences is the inverse of FromSequences: each block expands to a
// view Sequence (see Block.Sequence). Round-tripping preserves every
// float64 bit and the empty/non-empty structure.
func ToSequences(blocks []Block) []Sequence {
	out := make([]Sequence, len(blocks))
	for i, b := range blocks {
		out[i] = b.Sequence()
	}
	return out
}
