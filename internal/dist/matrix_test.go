package dist

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

func randSequences(n, minLen, maxLen int, seed int64) []Sequence {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sequence, n)
	for i := range out {
		l := minLen + rng.Intn(maxLen-minLen+1)
		s := make(Sequence, l)
		for j := range s {
			s[j] = Vec{rng.Float64() * 100, rng.Float64() * 100}
		}
		out[i] = s
	}
	return out
}

func TestPairwiseMatrixMatchesSequential(t *testing.T) {
	seqs := randSequences(17, 3, 12, 41)
	want, err := PairwiseMatrix(seqs, EGED, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 8} {
		got, err := PairwiseMatrix(seqs, EGED, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d: d[%d][%d] = %v, want %v (not byte-identical)",
						workers, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestPairwiseMatrixSymmetryAndDiagonal(t *testing.T) {
	seqs := randSequences(9, 2, 9, 5)
	d, err := PairwiseMatrix(seqs, EGEDMZero, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d {
		if d[i][i] != 0 {
			t.Errorf("diagonal d[%d][%d] = %v", i, i, d[i][i])
		}
		for j := range d {
			if d[i][j] != d[j][i] {
				t.Errorf("asymmetric: d[%d][%d]=%v, d[%d][%d]=%v", i, j, d[i][j], j, i, d[j][i])
			}
		}
	}
	// The upper triangle must hold real metric values.
	if d[0][1] != EGEDMZero(seqs[0], seqs[1]) {
		t.Errorf("d[0][1] = %v, want direct evaluation %v", d[0][1], EGEDMZero(seqs[0], seqs[1]))
	}
}

// TestPairwiseMatrixDimensionMismatch verifies the satellite fix: a
// dimension mismatch inside a worker comes back as an error wrapping
// ErrMatrix, not a process-crashing panic.
func TestPairwiseMatrixDimensionMismatch(t *testing.T) {
	seqs := randSequences(6, 3, 6, 7)
	seqs[3] = Sequence{Vec{1, 2, 3}} // 3-D sample in a 2-D set
	for _, workers := range []int{1, 4} {
		_, err := PairwiseMatrix(seqs, EGED, workers)
		if err == nil {
			t.Fatalf("workers=%d: no error for mismatched dimensions", workers)
		}
		if !errors.Is(err, ErrMatrix) {
			t.Errorf("workers=%d: err = %v, want ErrMatrix", workers, err)
		}
	}
}

func TestCrossMatrixMatchesDirect(t *testing.T) {
	a := randSequences(7, 3, 9, 11)
	b := randSequences(4, 3, 9, 13)
	for _, workers := range []int{1, 3} {
		d, err := CrossMatrix(a, b, EGED, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range a {
			for j := range b {
				if want := EGED(a[i], b[j]); d[i][j] != want {
					t.Fatalf("workers=%d: d[%d][%d] = %v, want %v", workers, i, j, d[i][j], want)
				}
			}
		}
	}
}

func TestCrossMatrixDimensionMismatch(t *testing.T) {
	a := randSequences(3, 2, 4, 3)
	b := []Sequence{{Vec{1, 2, 3}}}
	if _, err := CrossMatrix(a, b, EGED, 2); !errors.Is(err, ErrMatrix) {
		t.Fatalf("err = %v, want ErrMatrix", err)
	}
}

func TestPairwiseMatrixCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PairwiseMatrixCtx(ctx, randSequences(32, 4, 8, 1), EGED, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestPairwiseMatrixAllocsFlat pins the satellite fix for allocation
// growth with worker count: the parallel path pays a constant setup cost
// (chunk list + pool machinery) that must NOT scale with workers — the
// old per-row closure allocations made allocs/op climb 4 → 17 → 20 across
// workers 1/2/4.
func TestPairwiseMatrixAllocsFlat(t *testing.T) {
	seqs := randSequences(40, 3, 6, 55)
	cheap := func(a, b Sequence) float64 { return float64(len(a) + len(b)) }
	measure := func(w int) float64 {
		return testing.AllocsPerRun(50, func() {
			if _, err := PairwiseMatrix(seqs, cheap, w); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := measure(2)
	for _, w := range []int{4, 8} {
		if got := measure(w); got > base {
			t.Errorf("allocs/op grew with workers: %v at workers=2, %v at workers=%d", base, got, w)
		}
	}
	if seq := measure(1); base > seq+10 {
		t.Errorf("parallel setup costs %v allocs over sequential %v — constant overhead regressed", base, seq)
	}
}

func TestCountedIsExactUnderParallelism(t *testing.T) {
	seqs := randSequences(20, 3, 6, 21)
	var c Counter
	if _, err := PairwiseMatrix(seqs, Counted(EGED, &c), 4); err != nil {
		t.Fatal(err)
	}
	want := int64(len(seqs) * (len(seqs) - 1) / 2)
	if c.Count() != want {
		t.Errorf("counted %d evaluations, want %d (upper triangle only)", c.Count(), want)
	}
}
