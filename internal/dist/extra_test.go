package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestLCSSWindow(t *testing.T) {
	a := seq1(1, 2, 3, 4, 5, 6, 7, 8)
	b := seq1(5, 6, 7, 8, 1, 2, 3, 4)
	// Without a window the common subsequence 5,6,7,8 (or 1,2,3,4) matches.
	if got := LCSSLength(a, b, 0.1, -1); got != 4 {
		t.Errorf("unwindowed LCSS = %d, want 4", got)
	}
	// With delta = 1 the far-shifted matches are forbidden.
	if got := LCSSLength(a, b, 0.1, 1); got >= 4 {
		t.Errorf("windowed LCSS = %d, want < 4", got)
	}
	// Identical sequences are unaffected by the window.
	if got := LCSSLength(a, a, 0.1, 0); got != 8 {
		t.Errorf("self LCSS with delta 0 = %d, want 8", got)
	}
}

func TestLCSSDistBounds(t *testing.T) {
	a := seq1(1, 2, 3)
	if got := LCSSDist(a, a, 0.1, -1); got != 0 {
		t.Errorf("LCSSDist(self) = %v", got)
	}
	if got := LCSSDist(a, seq1(100, 200), 0.1, -1); got != 1 {
		t.Errorf("LCSSDist(disjoint) = %v", got)
	}
	if got := LCSSDist(nil, nil, 0.1, -1); got != 0 {
		t.Errorf("LCSSDist(nil, nil) = %v", got)
	}
	if got := LCSSDist(nil, a, 0.1, -1); got != 1 {
		t.Errorf("LCSSDist(nil, x) = %v", got)
	}
	m := LCSSMetric(0.1, 2)
	if got := m(a, a); got != 0 {
		t.Errorf("LCSSMetric(self) = %v", got)
	}
}

func TestLCSSAgreesWithLCSWhenUnwindowed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		mk := func() Sequence {
			n := 1 + rng.Intn(8)
			s := make(Sequence, n)
			for i := range s {
				s[i] = Vec{float64(rng.Intn(6))}
			}
			return s
		}
		a, b := mk(), mk()
		if LCSSLength(a, b, 0.5, -1) != LCSLength(a, b, 0.5) {
			t.Fatalf("trial %d: windowless LCSS != LCS", trial)
		}
	}
}

func TestEDR(t *testing.T) {
	a := seq1(1, 2, 3)
	if got := EDR(a, a, 0.1); got != 0 {
		t.Errorf("EDR(self) = %d", got)
	}
	if got := EDR(a, seq1(1, 9, 3), 0.1); got != 1 {
		t.Errorf("EDR one substitution = %d", got)
	}
	m := EDRMetric(0.1)
	if got := m(a, seq1(1, 9, 3)); math.Abs(got-1.0/3.0) > 1e-9 {
		t.Errorf("EDRMetric = %v, want 1/3", got)
	}
	if got := m(nil, nil); got != 0 {
		t.Errorf("EDRMetric(nil, nil) = %v", got)
	}
}

func TestFrechetKnownValues(t *testing.T) {
	tests := []struct {
		name string
		a, b Sequence
		want float64
	}{
		{"identical", seq1(1, 2, 3), seq1(1, 2, 3), 0},
		{"constant offset", seq1(0, 0, 0), seq1(2, 2, 2), 2},
		{"single spike dominates", seq1(0, 0, 0, 0), seq1(0, 50, 0, 0), 50},
		{"stretched copy", seq1(1, 2, 3), seq1(1, 1, 2, 2, 3, 3), 0},
		{"both empty", nil, nil, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Frechet(tt.a, tt.b); !almostEq(got, tt.want) {
				t.Errorf("Frechet = %v, want %v", got, tt.want)
			}
		})
	}
	if got := Frechet(seq1(1), nil); !math.IsInf(got, 1) {
		t.Errorf("Frechet(x, empty) = %v", got)
	}
}

func TestFrechetMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mk := func() Sequence {
		n := 1 + rng.Intn(6)
		s := make(Sequence, n)
		for i := range s {
			s[i] = Vec{rng.Float64() * 10, rng.Float64() * 10}
		}
		return s
	}
	for trial := 0; trial < 200; trial++ {
		a, b, c := mk(), mk(), mk()
		dab, dba := Frechet(a, b), Frechet(b, a)
		if !almostEq(dab, dba) {
			t.Fatalf("trial %d: not symmetric", trial)
		}
		if Frechet(a, a) != 0 {
			t.Fatalf("trial %d: self distance non-zero", trial)
		}
		if Frechet(a, c) > dab+Frechet(b, c)+1e-9 {
			t.Fatalf("trial %d: triangle violation", trial)
		}
	}
}

func TestOutlierSensitivityContrast(t *testing.T) {
	// A single amplitude spike: Fréchet and EGED both pay roughly the
	// spike height (Fréchet as a minimax, EGED as one edit), while LCSS
	// caps the damage at one unmatched sample — the amplitude-robustness
	// contrast. EGED's own robustness is to local TIME shifts, which is
	// tested separately (TestEGEDLocalTimeShift).
	clean := seq1(0, 1, 2, 3, 4, 5, 6, 7)
	spiked := seq1(0, 1, 2, 100, 4, 5, 6, 7)
	if f := Frechet(clean, spiked); f < 90 {
		t.Errorf("Frechet spike response = %v, want ~97", f)
	}
	if e := EGED(clean, spiked); e < 90 || e > 110 {
		t.Errorf("EGED spike response = %v, want ~97 (one edit)", e)
	}
	if l := LCSSDist(clean, spiked, 0.5, 2); math.Abs(l-1.0/8.0) > 1e-9 {
		t.Errorf("LCSS spike response = %v, want 1/8 (one unmatched sample)", l)
	}
}
