package dist

import (
	"encoding/binary"
	"math"
	"testing"
)

// decodeFuzzSequences turns fuzz bytes into two small 2-D sequences with
// finite coordinates (int16 sixteenths keep magnitudes sane while still
// exercising negatives, zeros, and large values).
func decodeFuzzSequences(data []byte) (a, b Sequence) {
	if len(data) == 0 {
		return nil, nil
	}
	la := int(data[0]) % 13
	lb := int(data[0]>>4) % 13
	data = data[1:]
	next := func() float64 {
		if len(data) == 0 {
			return 0
		}
		var v int16
		if len(data) == 1 {
			v = int16(data[0])
			data = nil
		} else {
			v = int16(binary.LittleEndian.Uint16(data))
			data = data[2:]
		}
		return float64(v) / 16
	}
	a = make(Sequence, la)
	for i := range a {
		a[i] = Vec{next(), next()}
	}
	b = make(Sequence, lb)
	for i := range b {
		b[i] = Vec{next(), next()}
	}
	return a, b
}

// FuzzEGEDKernels cross-checks the distance kernels against each other on
// arbitrary sequences: the early-abandoning forms must be bit-identical
// to the exact forms whenever they do not abandon (and must never abandon
// at ub = +Inf or ub = the exact distance), an abandoned result must be
// an admissible lower bound strictly above the cutoff, and every cascade
// lower bound must stay at or below the exact distance it gates.
func FuzzEGEDKernels(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x32, 10, 0, 20, 0, 30, 0, 40, 0, 50, 0})
	f.Add([]byte{0x11, 0xff, 0x7f, 0x00, 0x80}) // extreme coordinates
	f.Add([]byte{0x05})                         // one empty side
	f.Add([]byte{0xcc, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})

	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := decodeFuzzSequences(data)

		exact := EGEDMZero(a, b)
		if math.IsNaN(exact) || exact < 0 {
			t.Fatalf("EGEDMZero = %v on finite input", exact)
		}
		if d, ab := EGEDMZeroUB(a, b, math.Inf(1)); ab || math.Float64bits(d) != math.Float64bits(exact) {
			t.Fatalf("EGEDMZeroUB(+Inf) = (%v, %v), want (%v, false) bit-identical", d, ab, exact)
		}
		// The cutoff fires strictly above ub, so ub = exact never abandons.
		if d, ab := EGEDMZeroUB(a, b, exact); ab || math.Float64bits(d) != math.Float64bits(exact) {
			t.Fatalf("EGEDMZeroUB(exact) = (%v, %v), want (%v, false) bit-identical", d, ab, exact)
		}
		if tight := exact / 2; tight < exact {
			d, ab := EGEDMZeroUB(a, b, tight)
			if ab {
				if !(d > tight) || d > exact {
					t.Fatalf("abandoned result %v not in (ub=%v, exact=%v]", d, tight, exact)
				}
			} else if math.Float64bits(d) != math.Float64bits(exact) {
				t.Fatalf("non-abandoned EGEDMZeroUB(%v) = %v, want %v bit-identical", tight, d, exact)
			}
		}

		dtw := DTW(a, b)
		if d, ab := DTWUB(a, b, math.Inf(1)); ab || math.Float64bits(d) != math.Float64bits(dtw) {
			t.Fatalf("DTWUB(+Inf) = (%v, %v), want (%v, false) bit-identical", d, ab, dtw)
		}

		// Lower bounds must be admissible against the distances they prune
		// for; allow a hair of accumulation slack since the bounds and the
		// DP sum in different orders.
		tol := 1e-9 * math.Max(1, exact)
		for _, c := range []struct {
			name  string
			casc  Cascade
			exact float64
		}{
			{"EGEDMCascade", EGEDMCascade(nil), exact},
			{"DTWCascade", DTWCascade(), dtw},
		} {
			sa, sb := c.casc.Summarize(a), c.casc.Summarize(b)
			if lb := c.casc.LBQuick(a, b, sa, sb); lb > c.exact+tol {
				t.Fatalf("%s.LBQuick = %v exceeds exact %v", c.name, lb, c.exact)
			}
			if lb := c.casc.LBEnvelope(a, sb); lb > c.exact+tol {
				t.Fatalf("%s.LBEnvelope = %v exceeds exact %v", c.name, lb, c.exact)
			}
			if d, ab := c.casc.DistanceUB(a, b, math.Inf(1)); ab || math.Float64bits(d) != math.Float64bits(c.exact) {
				t.Fatalf("%s.DistanceUB(+Inf) = (%v, %v), want (%v, false)", c.name, d, ab, c.exact)
			}
		}

		// The cache key must be deterministic and length-sensitive enough
		// that a sequence never collides with its own prefix.
		if HashSequence(a) != HashSequence(a) {
			t.Fatal("HashSequence not deterministic")
		}
		if len(a) > 1 && HashSequence(a) == HashSequence(a[:len(a)-1]) {
			t.Fatalf("HashSequence collides with own prefix for %v", a)
		}
	})
}

// FuzzColumnarKernels cross-checks the columnar layer against the
// sequence kernels on arbitrary inputs: the layout round trip must be
// bit-exact, the batched DP must match EGEDWithUB bit-for-bit (result,
// abandon decision, and accounting) at several thresholds, and a valid
// quantized bound must never exceed the envelope bound it short-circuits.
func FuzzColumnarKernels(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x32, 10, 0, 20, 0, 30, 0, 40, 0, 50, 0})
	f.Add([]byte{0x11, 0xff, 0x7f, 0x00, 0x80}) // extreme coordinates
	f.Add([]byte{0x05})                         // one empty side
	f.Add([]byte{0xcc, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})

	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := decodeFuzzSequences(data)

		// Layout round trip preserves every bit and the empty structure.
		blocks := FromSequences([]Sequence{a, b})
		back := ToSequences(blocks)
		for i, orig := range []Sequence{a, b} {
			if len(orig) != len(back[i]) {
				t.Fatalf("seq %d: round trip changed length %d -> %d", i, len(orig), len(back[i]))
			}
			for j := range orig {
				for k := range orig[j] {
					if math.Float64bits(orig[j][k]) != math.Float64bits(back[i][j][k]) {
						t.Fatalf("seq %d sample %d: round trip changed bits", i, j)
					}
				}
			}
		}

		// Batched kernel: bit-identical to the per-pair kernel, including
		// the eval/cell accounting, at +Inf, the exact value, and a cutoff
		// that forces abandonment.
		exact := EGEDMZero(a, b)
		arena := NewBatchQuery(blocks[0], nil).NewBatch()
		for _, ub := range []float64{math.Inf(1), exact, exact / 2} {
			e0, c0 := TotalEvals(), DPCells()
			wantD, wantAb := EGEDWithUB(a, b, GapConstant, nil, ub)
			e1, c1 := TotalEvals(), DPCells()
			gotD, gotAb := arena.DistanceUB(blocks[1], ub)
			e2, c2 := TotalEvals(), DPCells()
			if gotAb != wantAb || math.Float64bits(gotD) != math.Float64bits(wantD) {
				t.Fatalf("ub=%v: batch=(%v,%v), per-pair=(%v,%v)", ub, gotD, gotAb, wantD, wantAb)
			}
			if e2-e1 != e1-e0 || c2-c1 != c1-c0 {
				t.Fatalf("ub=%v: accounting differs (batch %d evals/%d cells, per-pair %d/%d)",
					ub, e2-e1, c2-c1, e1-e0, c1-c0)
			}
		}

		// Quantized tier: for whatever grid the candidate's own envelope
		// fits, LBQuant must stay at or below LBEnvelope bit-for-bit.
		casc := EGEDMCascade(nil)
		qc := casc.(QuantCascade)
		sb := casc.Summarize(b)
		grid := BuildQuantGrid([]Box{sb.Box})
		code := grid.Encode(sb.Box)
		if grid.Ok && code.Valid {
			lbq := qc.LBQuant(a, qc.QueryGaps(a), grid, code)
			if lbe := casc.LBEnvelope(a, sb); lbq > lbe {
				t.Fatalf("LBQuant %v > LBEnvelope %v", lbq, lbe)
			}
		}
	})
}
