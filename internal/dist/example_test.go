package dist_test

import (
	"fmt"

	"strgindex/internal/dist"
)

// The paper's Section 3.1 example: the non-metric EGED violates the
// triangle inequality, its constant-gap variant EGED_M restores it.
func ExampleEGED() {
	r := dist.Sequence{{0}}
	s := dist.Sequence{{1}, {1}}
	t := dist.Sequence{{2}, {2}, {3}}
	fmt.Printf("EGED(r,t)=%.0f EGED(r,s)+EGED(s,t)=%.0f\n",
		dist.EGED(r, t), dist.EGED(r, s)+dist.EGED(s, t))
	fmt.Printf("EGEDM(r,t)=%.0f EGEDM(r,s)+EGEDM(s,t)=%.0f\n",
		dist.EGEDMZero(r, t), dist.EGEDMZero(r, s)+dist.EGEDMZero(s, t))
	// Output:
	// EGED(r,t)=7 EGED(r,s)+EGED(s,t)=6
	// EGEDM(r,t)=7 EGEDM(r,s)+EGEDM(s,t)=7
}

// Counting distance evaluations, the paper's query cost model.
func ExampleCounted() {
	var c dist.Counter
	metric := dist.Counted(dist.EGEDMZero, &c)
	a := dist.Sequence{{0, 0}, {10, 0}}
	b := dist.Sequence{{0, 1}, {10, 1}}
	metric(a, b)
	metric(a, b)
	fmt.Println(c.Count())
	// Output: 2
}
