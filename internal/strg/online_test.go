package strg

import (
	"testing"

	"strgindex/internal/geom"
	"strgindex/internal/video"
)

func TestOnlineMatchesBatchOnSingleObject(t *testing.T) {
	obj := personSpec("walker", []geom.Point{geom.Pt(30, 120), geom.Pt(290, 120)}, 0, 12)
	cfg := sceneWithObjects(12, 0.5, obj)
	seg, err := video.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Batch reference.
	s, err := Build(seg, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	batch := s.Decompose(DefaultConfig()).OGs

	// Streaming.
	b := NewOnlineBuilder(DefaultConfig())
	var online []*OG
	for _, f := range seg.Frames {
		online = append(online, b.AddFrame(f)...)
	}
	online = append(online, b.Flush()...)

	if len(online) != len(batch) {
		t.Fatalf("online emitted %d OGs, batch %d", len(online), len(batch))
	}
	if online[0].Label != "walker" {
		t.Errorf("online OG label = %q", online[0].Label)
	}
	if online[0].Len() != batch[0].Len() {
		t.Errorf("online OG length %d, batch %d", online[0].Len(), batch[0].Len())
	}
	// Trajectories must agree sample by sample.
	for i := range online[0].Centroids {
		if online[0].Centroids[i].Dist(batch[0].Centroids[i]) > 1e-9 {
			t.Fatalf("sample %d differs: %v vs %v", i, online[0].Centroids[i], batch[0].Centroids[i])
		}
	}
}

func TestOnlineEmitsAfterObjectLeaves(t *testing.T) {
	// Object active frames 0..9 of 20; after it leaves (plus the trailing
	// merge window), its OG should be emitted before the stream ends.
	obj := personSpec("early", []geom.Point{geom.Pt(30, 120), geom.Pt(290, 120)}, 0, 10)
	cfg := sceneWithObjects(20, 0.5, obj)
	seg, err := video.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := NewOnlineBuilder(DefaultConfig())
	emittedAt := -1
	for i, f := range seg.Frames {
		if got := b.AddFrame(f); len(got) > 0 {
			if emittedAt >= 0 {
				t.Fatalf("second emission at frame %d", i)
			}
			emittedAt = i
			if got[0].Label != "early" {
				t.Errorf("emitted label %q", got[0].Label)
			}
		}
	}
	if emittedAt < 0 {
		t.Fatal("OG not emitted before stream end despite object leaving at frame 10")
	}
	if rest := b.Flush(); len(rest) != 0 {
		t.Errorf("Flush emitted %d extra OGs", len(rest))
	}
}

func TestOnlineTwoObjects(t *testing.T) {
	a := personSpec("north", []geom.Point{geom.Pt(80, 220), geom.Pt(80, 20)}, 0, 12)
	c := personSpec("east", []geom.Point{geom.Pt(30, 60), geom.Pt(290, 60)}, 0, 12)
	cfg := sceneWithObjects(12, 0.5, a, c)
	seg, err := video.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := NewOnlineBuilder(DefaultConfig())
	var ogs []*OG
	for _, f := range seg.Frames {
		ogs = append(ogs, b.AddFrame(f)...)
	}
	ogs = append(ogs, b.Flush()...)
	labels := map[string]int{}
	for _, og := range ogs {
		labels[og.Label]++
	}
	if labels["north"] != 1 || labels["east"] != 1 {
		t.Errorf("online OGs = %v, want one north and one east", labels)
	}
}

func TestOnlineEmptyStream(t *testing.T) {
	b := NewOnlineBuilder(DefaultConfig())
	if got := b.Flush(); len(got) != 0 {
		t.Errorf("Flush on empty builder emitted %d", len(got))
	}
}

func TestOnlineStaticSceneEmitsNothing(t *testing.T) {
	seg, err := video.Generate(sceneWithObjects(10, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	b := NewOnlineBuilder(DefaultConfig())
	var ogs []*OG
	for _, f := range seg.Frames {
		ogs = append(ogs, b.AddFrame(f)...)
	}
	ogs = append(ogs, b.Flush()...)
	if len(ogs) != 0 {
		t.Errorf("static scene emitted %d OGs", len(ogs))
	}
}
