package strg

import (
	"testing"

	"strgindex/internal/video"
)

// TestBuildDeterministicUnderConcurrency verifies that the concurrent
// construction path (parallel RAGs, parallel candidate scoring) emits
// exactly the temporal edges of the sequential build: tracking's ranking
// and greedy assignment consume a candidate list whose content and order
// do not depend on scheduling.
func TestBuildDeterministicUnderConcurrency(t *testing.T) {
	prof := video.StreamProfiles()[0]
	prof.NumObjects = 8
	stream, err := video.GenerateStream(prof, 5)
	if err != nil {
		t.Fatal(err)
	}
	for si, seg := range stream.Segments {
		cfg := DefaultConfig()
		cfg.BridgeFrames = 2 // exercise the occlusion-bridging pass too
		cfg.Concurrency = 1
		want, err := Build(seg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 3} {
			cfg.Concurrency = workers
			got, err := Build(seg, cfg)
			if err != nil {
				t.Fatalf("segment %d workers=%d: %v", si, workers, err)
			}
			if got.NumNodes() != want.NumNodes() {
				t.Fatalf("segment %d workers=%d: %d nodes, want %d", si, workers, got.NumNodes(), want.NumNodes())
			}
			if got.NumTemporalEdges() != want.NumTemporalEdges() {
				t.Fatalf("segment %d workers=%d: %d temporal edges, want %d",
					si, workers, got.NumTemporalEdges(), want.NumTemporalEdges())
			}
			for _, g := range want.Frames {
				for _, id := range g.NodeIDs() {
					wn, wok := want.Next(id)
					gn, gok := got.Next(id)
					if wok != gok || wn != gn {
						t.Fatalf("segment %d workers=%d: next(%d) = (%d, %v), want (%d, %v)",
							si, workers, id, gn, gok, wn, wok)
					}
					wa, _ := want.TemporalAttrOf(id)
					ga, _ := got.TemporalAttrOf(id)
					if wa != ga {
						t.Fatalf("segment %d workers=%d: temporal attr of %d = %+v, want %+v (not byte-identical)",
							si, workers, id, ga, wa)
					}
					wf, _ := want.FrameOf(id)
					gf, _ := got.FrameOf(id)
					if wf != gf {
						t.Fatalf("segment %d workers=%d: frame of %d = %d, want %d", si, workers, id, gf, wf)
					}
				}
			}
		}
	}
}
