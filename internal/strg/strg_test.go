package strg

import (
	"math"
	"testing"

	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/video"
)

// sceneWithObjects builds a test scene: static background grid plus the
// given objects.
func sceneWithObjects(frames int, jitter float64, objects ...video.ObjectSpec) video.SceneConfig {
	return video.SceneConfig{
		Name:           "test-seg",
		Width:          320,
		Height:         240,
		FPS:            12,
		Frames:         frames,
		BackgroundRows: 3,
		BackgroundCols: 4,
		Jitter:         jitter,
		Seed:           11,
		Objects:        objects,
	}
}

func personSpec(label string, path []geom.Point, start, end int) video.ObjectSpec {
	return video.ObjectSpec{
		Label: label,
		Parts: []video.PartSpec{
			{Offset: geom.Vec(0, -16), Size: 100, Color: graph.Color{R: 0.9, G: 0.7, B: 0.6}},
			{Offset: geom.Vec(0, 0), Size: 350, Color: graph.Color{R: 0.8, G: 0.2, B: 0.2}},
			{Offset: geom.Vec(0, 17), Size: 250, Color: graph.Color{R: 0.2, G: 0.2, B: 0.3}},
		},
		Path:  path,
		Start: start,
		End:   end,
	}
}

func buildScene(t *testing.T, cfg video.SceneConfig) *STRG {
	t.Helper()
	seg, err := video.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(seg, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildEmptySegment(t *testing.T) {
	if _, err := Build(nil, DefaultConfig()); err == nil {
		t.Error("Build(nil) did not error")
	}
	if _, err := Build(&video.Segment{}, DefaultConfig()); err == nil {
		t.Error("Build(empty) did not error")
	}
}

func TestBuildFramesAndUniqueIDs(t *testing.T) {
	s := buildScene(t, sceneWithObjects(8, 0))
	if len(s.Frames) != 8 {
		t.Fatalf("frames = %d, want 8", len(s.Frames))
	}
	// 12 background regions per frame, no objects.
	if s.NumNodes() != 8*12 {
		t.Errorf("NumNodes = %d, want 96", s.NumNodes())
	}
	seen := make(map[graph.NodeID]bool)
	for _, g := range s.Frames {
		for _, id := range g.NodeIDs() {
			if seen[id] {
				t.Fatalf("node ID %d appears in two frames", id)
			}
			seen[id] = true
		}
	}
}

func TestTrackingStaticBackground(t *testing.T) {
	s := buildScene(t, sceneWithObjects(8, 0))
	// Every background node except those in the last frame should track to
	// its counterpart with zero velocity.
	if got, want := s.NumTemporalEdges(), 7*12; got != want {
		t.Errorf("temporal edges = %d, want %d", got, want)
	}
	for id := range s.next {
		attr, _ := s.TemporalAttrOf(id)
		if attr.Velocity > 1e-9 {
			t.Errorf("static node %d has velocity %v", id, attr.Velocity)
		}
	}
}

func TestTrackingFollowsMovingObject(t *testing.T) {
	obj := personSpec("walker", []geom.Point{geom.Pt(30, 120), geom.Pt(290, 120)}, 0, 12)
	s := buildScene(t, sceneWithObjects(12, 0, obj))
	// Find a chain of "walker" nodes covering most of the segment.
	chains := s.Chains()
	var best *Chain
	for _, c := range chains {
		n, _ := s.nodeOf(c.Nodes[0])
		if n.Attr.Label == "walker" && (best == nil || c.Len() > best.Len()) {
			best = c
		}
	}
	if best == nil {
		t.Fatal("no chain tracked the walker")
	}
	if best.Len() < 10 {
		t.Errorf("walker chain length = %d, want >= 10", best.Len())
	}
	// The object moves east at ~23.6 px/frame.
	v := best.MeanVelocity()
	if v < 15 || v > 35 {
		t.Errorf("walker velocity = %v, want ~23.6", v)
	}
	if d := geom.AngleDiff(best.MeanDirection(), 0); d > 0.3 {
		t.Errorf("walker direction off east by %v rad", d)
	}
}

func TestChainsPartitionNodes(t *testing.T) {
	obj := personSpec("walker", []geom.Point{geom.Pt(30, 120), geom.Pt(290, 120)}, 2, 10)
	s := buildScene(t, sceneWithObjects(12, 1.0, obj))
	chains := s.Chains()
	seen := make(map[graph.NodeID]bool)
	total := 0
	for _, c := range chains {
		if len(c.Nodes) != len(c.Frames) {
			t.Fatalf("chain nodes/frames length mismatch: %d vs %d", len(c.Nodes), len(c.Frames))
		}
		if len(c.Attrs) != len(c.Nodes)-1 {
			t.Fatalf("chain attrs length = %d, want %d", len(c.Attrs), len(c.Nodes)-1)
		}
		for i := 1; i < len(c.Frames); i++ {
			if c.Frames[i] != c.Frames[i-1]+1 {
				t.Fatalf("chain frames not consecutive: %v", c.Frames)
			}
		}
		for _, id := range c.Nodes {
			if seen[id] {
				t.Fatalf("node %d in two chains", id)
			}
			seen[id] = true
			total++
		}
	}
	if total != s.NumNodes() {
		t.Errorf("chains cover %d nodes, want %d", total, s.NumNodes())
	}
}

func TestDecomposeSingleObject(t *testing.T) {
	obj := personSpec("walker", []geom.Point{geom.Pt(30, 120), geom.Pt(290, 120)}, 0, 12)
	s := buildScene(t, sceneWithObjects(12, 0.5, obj))
	d := s.Decompose(DefaultConfig())
	if len(d.OGs) != 1 {
		labels := make([]string, 0, len(d.OGs))
		for _, og := range d.OGs {
			labels = append(labels, og.Label)
		}
		t.Fatalf("OGs = %d (%v), want 1 (three parts merged)", len(d.OGs), labels)
	}
	og := d.OGs[0]
	if og.Label != "walker" {
		t.Errorf("OG label = %q, want walker", og.Label)
	}
	if og.Len() < 10 {
		t.Errorf("OG length = %d, want >= 10", og.Len())
	}
	// Background graph should have one node per background cell.
	if d.BG.Order() != 12 {
		t.Errorf("BG order = %d, want 12", d.BG.Order())
	}
	if d.BG.Size() == 0 {
		t.Error("BG has no spatial edges")
	}
}

func TestDecomposeTwoSeparateObjects(t *testing.T) {
	a := personSpec("north", []geom.Point{geom.Pt(80, 220), geom.Pt(80, 20)}, 0, 12)
	b := personSpec("east", []geom.Point{geom.Pt(30, 60), geom.Pt(290, 60)}, 0, 12)
	s := buildScene(t, sceneWithObjects(12, 0.5, a, b))
	d := s.Decompose(DefaultConfig())
	labels := map[string]int{}
	for _, og := range d.OGs {
		labels[og.Label]++
	}
	if labels["north"] != 1 || labels["east"] != 1 {
		t.Errorf("OG labels = %v, want one north and one east", labels)
	}
}

func TestOGSequence(t *testing.T) {
	obj := personSpec("walker", []geom.Point{geom.Pt(30, 120), geom.Pt(290, 120)}, 0, 12)
	s := buildScene(t, sceneWithObjects(12, 0, obj))
	d := s.Decompose(DefaultConfig())
	if len(d.OGs) != 1 {
		t.Fatalf("OGs = %d, want 1", len(d.OGs))
	}
	seq := d.OGs[0].Sequence()
	if len(seq) != d.OGs[0].Len() {
		t.Fatalf("sequence length %d != OG length %d", len(seq), d.OGs[0].Len())
	}
	if seq.Dim() != 2 {
		t.Fatalf("sequence dim = %d, want 2", seq.Dim())
	}
	// Monotone eastward trajectory.
	for i := 1; i < len(seq); i++ {
		if seq[i][0] <= seq[i-1][0] {
			t.Errorf("trajectory X not increasing at %d: %v -> %v", i, seq[i-1][0], seq[i][0])
		}
	}
}

func TestDecomposeSizeAccounting(t *testing.T) {
	obj := personSpec("walker", []geom.Point{geom.Pt(30, 120), geom.Pt(290, 120)}, 0, 12)
	s := buildScene(t, sceneWithObjects(12, 0.5, obj))
	d := s.Decompose(DefaultConfig())
	if d.NumFrames != 12 {
		t.Errorf("NumFrames = %d, want 12", d.NumFrames)
	}
	strgSize := d.STRGSizeBytes()
	if strgSize <= 0 {
		t.Fatal("STRGSizeBytes <= 0")
	}
	// Equation 9 dominates via N × size(BG).
	if bgTerm := d.NumFrames * d.BG.MemoryBytes(); strgSize < bgTerm {
		t.Errorf("STRG size %d < background term %d", strgSize, bgTerm)
	}
	if s.MemoryBytes() <= 0 {
		t.Error("raw STRG MemoryBytes <= 0")
	}
}

func TestOGFrameBounds(t *testing.T) {
	obj := personSpec("walker", []geom.Point{geom.Pt(30, 120), geom.Pt(290, 120)}, 3, 11)
	s := buildScene(t, sceneWithObjects(14, 0, obj))
	d := s.Decompose(DefaultConfig())
	if len(d.OGs) != 1 {
		t.Fatalf("OGs = %d, want 1", len(d.OGs))
	}
	og := d.OGs[0]
	if og.StartFrame() < 3 {
		t.Errorf("StartFrame = %d, want >= 3", og.StartFrame())
	}
	if og.EndFrame() > 10 {
		t.Errorf("EndFrame = %d, want <= 10", og.EndFrame())
	}
	if og.Clip.FrameStart != og.StartFrame() || og.Clip.FrameEnd != og.EndFrame()+1 {
		t.Errorf("clip %v does not match OG span [%d, %d]", og.Clip, og.StartFrame(), og.EndFrame())
	}
	empty := &OG{}
	if empty.StartFrame() != -1 || empty.EndFrame() != -1 {
		t.Error("empty OG frame bounds should be -1")
	}
}

func TestChainMeanDirection(t *testing.T) {
	c := &Chain{
		Nodes:  []graph.NodeID{0, 1, 2},
		Frames: []int{0, 1, 2},
		Attrs: []TemporalAttr{
			{Velocity: 2, Direction: 0},
			{Velocity: 2, Direction: 0},
		},
	}
	if got := c.MeanDirection(); math.Abs(got) > 1e-9 {
		t.Errorf("MeanDirection = %v, want 0", got)
	}
	if got := c.MeanVelocity(); math.Abs(got-2) > 1e-9 {
		t.Errorf("MeanVelocity = %v, want 2", got)
	}
	still := &Chain{Nodes: []graph.NodeID{0}, Frames: []int{0}}
	if still.MeanVelocity() != 0 || still.MeanDirection() != 0 {
		t.Error("single-node chain should have zero velocity and direction")
	}
}

func TestDecomposeNoObjects(t *testing.T) {
	s := buildScene(t, sceneWithObjects(8, 0.5))
	d := s.Decompose(DefaultConfig())
	if len(d.OGs) != 0 {
		t.Errorf("OGs = %d, want 0 for a static scene", len(d.OGs))
	}
	if d.BG.Order() != 12 {
		t.Errorf("BG order = %d, want 12", d.BG.Order())
	}
}

func TestHeavyJitterStillTracksObject(t *testing.T) {
	// Failure injection: strong segmentation noise. Tracking should still
	// produce at least one OG for a fast-moving object, even if fragmented.
	obj := personSpec("walker", []geom.Point{geom.Pt(30, 120), geom.Pt(290, 120)}, 0, 12)
	s := buildScene(t, sceneWithObjects(12, 3.0, obj))
	d := s.Decompose(DefaultConfig())
	found := false
	for _, og := range d.OGs {
		if og.Label == "walker" {
			found = true
		}
	}
	if !found {
		t.Error("no OG labeled walker under heavy jitter")
	}
}
