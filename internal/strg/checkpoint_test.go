package strg

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"strgindex/internal/geom"
	"strgindex/internal/video"
)

// checkpointScene is a busy multi-object scene: crossing paths, staggered
// lifetimes and an early leaver, so multiple chains open and close on the
// same frames — the situation where closure order (and with it OG
// numbering) would be nondeterministic if it iterated a map.
func checkpointScene(t *testing.T) *video.Segment {
	t.Helper()
	cfg := sceneWithObjects(24, 0.5,
		personSpec("east", []geom.Point{geom.Pt(20, 60), geom.Pt(300, 60)}, 0, 14),
		personSpec("west", []geom.Point{geom.Pt(300, 120), geom.Pt(20, 120)}, 0, 14),
		personSpec("south", []geom.Point{geom.Pt(160, 20), geom.Pt(160, 220)}, 4, 18),
		personSpec("late", []geom.Point{geom.Pt(20, 200), geom.Pt(300, 200)}, 8, 22),
	)
	seg, err := video.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

func runOnline(cfg Config, frames []video.Frame) []*OG {
	b := NewOnlineBuilder(cfg)
	var out []*OG
	for _, f := range frames {
		out = append(out, b.AddFrame(f)...)
	}
	return append(out, b.Flush()...)
}

// TestOnlineEmissionDeterministic replays the same frame stream many
// times and demands byte-identical emissions — IDs, order and content.
// Before closure order was sorted this flaked over map iteration.
func TestOnlineEmissionDeterministic(t *testing.T) {
	seg := checkpointScene(t)
	ref := runOnline(DefaultConfig(), seg.Frames)
	if len(ref) == 0 {
		t.Fatal("scene emitted no OGs")
	}
	for run := 0; run < 10; run++ {
		got := runOnline(DefaultConfig(), seg.Frames)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("run %d emissions differ from reference", run)
		}
	}
	for i, og := range ref {
		if og.ID != i {
			t.Errorf("OG %d has ID %d (want dense ascending IDs)", i, og.ID)
		}
	}
}

// TestCheckpointRestoreEveryFrame checkpoints after every prefix length
// k, restores through a gob round trip (the feed journal's encoding),
// replays the remaining frames, and demands the combined emissions equal
// an uninterrupted run exactly.
func TestCheckpointRestoreEveryFrame(t *testing.T) {
	seg := checkpointScene(t)
	cfg := DefaultConfig()
	ref := runOnline(cfg, seg.Frames)

	for k := 0; k <= len(seg.Frames); k++ {
		b := NewOnlineBuilder(cfg)
		var got []*OG
		for _, f := range seg.Frames[:k] {
			got = append(got, b.AddFrame(f)...)
		}
		st := b.Checkpoint()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(st); err != nil {
			t.Fatalf("k=%d: encoding checkpoint: %v", k, err)
		}
		var round BuilderState
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&round); err != nil {
			t.Fatalf("k=%d: decoding checkpoint: %v", k, err)
		}
		r, err := RestoreOnlineBuilder(cfg, &round)
		if err != nil {
			t.Fatalf("k=%d: restore: %v", k, err)
		}
		for _, f := range seg.Frames[k:] {
			got = append(got, r.AddFrame(f)...)
		}
		got = append(got, r.Flush()...)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("k=%d: emissions after restore differ from uninterrupted run (got %d OGs, want %d)",
				k, len(got), len(ref))
		}
	}
}

// TestCheckpointBytesDeterministic demands two checkpoints of the same
// state encode to identical bytes: map-shaped builder state must flatten
// into sorted slices or the feed journal loses byte reproducibility.
func TestCheckpointBytesDeterministic(t *testing.T) {
	seg := checkpointScene(t)
	for k := 1; k <= len(seg.Frames); k += 5 {
		enc := func() []byte {
			b := NewOnlineBuilder(DefaultConfig())
			for _, f := range seg.Frames[:k] {
				b.AddFrame(f)
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(b.Checkpoint()); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		if !bytes.Equal(enc(), enc()) {
			t.Fatalf("k=%d: checkpoint bytes differ between identical states", k)
		}
	}
}

// TestCheckpointIsolated mutating the builder after Checkpoint must not
// leak into the captured state.
func TestCheckpointIsolated(t *testing.T) {
	seg := checkpointScene(t)
	b := NewOnlineBuilder(DefaultConfig())
	for _, f := range seg.Frames[:8] {
		b.AddFrame(f)
	}
	st := b.Checkpoint()
	before, err := encodeState(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range seg.Frames[8:] {
		b.AddFrame(f)
	}
	b.Flush()
	after, err := encodeState(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("checkpoint state mutated by later builder activity")
	}
}

func encodeState(st *BuilderState) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(st)
	return buf.Bytes(), err
}

func TestRestoreRejectsBadState(t *testing.T) {
	if _, err := RestoreOnlineBuilder(DefaultConfig(), nil); err == nil {
		t.Error("nil state accepted")
	}
	bad := &BuilderState{Open: []ChainState{{Tail: -1}}}
	if _, err := RestoreOnlineBuilder(DefaultConfig(), bad); err == nil {
		t.Error("open chain without tail accepted")
	}
	frame := &video.Frame{Regions: []video.Region{{ID: 0, Size: 10}, {ID: 1, Size: 10}}}
	if _, err := RestoreOnlineBuilder(DefaultConfig(), &BuilderState{BaseID: 1, LastFrame: frame}); err == nil {
		t.Error("base ID below last frame's regions accepted")
	}
}

// TestOpenMovingQuiescence tracks the quiescence signal across an
// object's lifetime: nonzero while it moves, zero after its chain closes.
func TestOpenMovingQuiescence(t *testing.T) {
	obj := personSpec("walker", []geom.Point{geom.Pt(30, 120), geom.Pt(290, 120)}, 0, 10)
	cfg := sceneWithObjects(20, 0.5, obj)
	seg, err := video.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := NewOnlineBuilder(DefaultConfig())
	sawMoving := false
	for i, f := range seg.Frames {
		b.AddFrame(f)
		if b.OpenMoving() > 0 {
			sawMoving = true
		}
		if i == len(seg.Frames)-1 && b.OpenMoving() != 0 {
			t.Errorf("OpenMoving = %d after the object left the scene", b.OpenMoving())
		}
	}
	if !sawMoving {
		t.Error("OpenMoving never saw the walking object")
	}
	if got := b.FrameCount(); got != len(seg.Frames) {
		t.Errorf("FrameCount = %d, want %d", got, len(seg.Frames))
	}
}
