// Package strg implements the Spatio-Temporal Region Graph of Definition 2:
// per-frame Region Adjacency Graphs connected by temporal edges, the
// graph-based tracking that constructs those edges (Algorithm 1), and the
// decomposition of an STRG into Object Graphs and a Background Graph
// (Section 2.3).
package strg

import (
	"fmt"
	"math"
	"sort"
	"time"

	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/parallel"
	"strgindex/internal/rag"
	"strgindex/internal/video"
)

// mustRun re-panics pool errors inside construction helpers whose task
// functions never return errors themselves: the only possible failure is a
// recovered worker panic, which the sequential path would have let escape.
func mustRun(err error) {
	if err != nil {
		panic(err)
	}
}

// TemporalAttr holds the attributes τ(e_T) of a temporal edge: how far the
// region's centroid moved between the two frames (velocity, in pixels per
// frame) and in which direction (radians).
type TemporalAttr struct {
	Velocity  float64
	Direction float64
}

// Config controls STRG construction and decomposition.
type Config struct {
	// RAG configures per-frame region adjacency.
	RAG rag.Config
	// Tol is the attribute tolerance used by neighborhood-graph matching.
	Tol graph.Tolerance
	// SimThreshold is T_sim of Algorithm 1: the minimum SimGraph value at
	// which two non-isomorphic neighborhood graphs still correspond.
	SimThreshold float64
	// MaxDisplacement gates tracking candidates: a region cannot move more
	// than this many pixels between consecutive frames.
	MaxDisplacement float64
	// MinObjectVelocity separates foreground chains (objects) from
	// background chains during decomposition, in pixels per frame.
	MinObjectVelocity float64
	// MinORGLength drops chains shorter than this many nodes before OG
	// extraction; very short tracks are segmentation noise.
	MinORGLength int
	// BridgeFrames allows tracking to reconnect a track across up to this
	// many missing frames (occlusion: the region vanished behind another
	// object and reappeared). Zero disables bridging; bridged temporal
	// edges span multiple frames with velocity averaged over the gap.
	BridgeFrames int
	// MergeVelocityTol and MergeProximity control ORG merging (Section
	// 2.3.2, "if two ORGs have the same moving direction and the same
	// velocity"): two ORGs merge into one OG when, averaged over their
	// shared frames, their per-frame velocity vectors differ by at most
	// MergeVelocityTol px/frame and their centroids stay within
	// MergeProximity pixels. Comparing instantaneous velocity vectors
	// rather than whole-chain means keeps parts of a turning object
	// together (fragments covering different legs of a U-turn share no
	// global direction, but at every shared instant they move alike).
	MergeVelocityTol float64
	MergeProximity   float64
	// Concurrency bounds the worker pool used during construction: the
	// per-frame RAGs are built concurrently and, within each consecutive
	// frame pair, Algorithm 1's candidate scoring (the neighborhood-graph
	// isomorphism/SimGraph evaluations) fans out across current-frame
	// nodes. The temporal stitching itself — candidate ranking and the
	// greedy one-to-one assignment — stays sequential, so the resulting
	// temporal edges are identical at any setting. 0 means one worker per
	// CPU; 1 reproduces the fully sequential construction.
	Concurrency int
}

// DefaultConfig returns the configuration used across the experiments.
func DefaultConfig() Config {
	return Config{
		RAG:               rag.DefaultConfig(),
		Tol:               graph.DefaultTolerance(),
		SimThreshold:      0.4,
		MaxDisplacement:   45,
		MinObjectVelocity: 3,
		MinORGLength:      4,
		MergeVelocityTol:  5,
		MergeProximity:    40,
	}
}

// STRG is a Spatio-Temporal Region Graph: one RAG per frame with node IDs
// unique across the whole segment, plus temporal edges between consecutive
// frames.
type STRG struct {
	Segment *video.Segment
	// Frames holds the per-frame RAGs.
	Frames []*graph.Graph

	frameOf map[graph.NodeID]int
	next    map[graph.NodeID]graph.NodeID
	inDeg   map[graph.NodeID]int
	tattr   map[graph.NodeID]TemporalAttr // attribute of the edge leaving the key node
	velIn   map[graph.NodeID]geom.Vector  // displacement of the edge arriving at the key node
}

// FrameOf returns the frame index a node belongs to.
func (s *STRG) FrameOf(id graph.NodeID) (int, bool) {
	f, ok := s.frameOf[id]
	return f, ok
}

// Next returns the temporal successor of a node, if the tracker linked one.
func (s *STRG) Next(id graph.NodeID) (graph.NodeID, bool) {
	n, ok := s.next[id]
	return n, ok
}

// TemporalAttrOf returns the attributes of the temporal edge leaving id.
func (s *STRG) TemporalAttrOf(id graph.NodeID) (TemporalAttr, bool) {
	a, ok := s.tattr[id]
	return a, ok
}

// NumTemporalEdges returns |E_T|.
func (s *STRG) NumTemporalEdges() int { return len(s.next) }

// NumNodes returns |V| across all frames.
func (s *STRG) NumNodes() int { return len(s.frameOf) }

// MemoryBytes estimates the raw in-memory footprint of the STRG: every
// frame's RAG plus the temporal edges. This is the uncompressed size that
// Section 5.4 compares the index against.
func (s *STRG) MemoryBytes() int {
	const temporalEdgeBytes = 8 + 8 + 16 // two IDs + velocity/direction
	total := len(s.next) * temporalEdgeBytes
	for _, g := range s.Frames {
		total += g.MemoryBytes()
	}
	return total
}

// Build constructs the STRG of a segment: it builds one RAG per frame and
// runs graph-based tracking (Algorithm 1) over each consecutive pair.
func Build(seg *video.Segment, cfg Config) (*STRG, error) {
	if seg == nil || len(seg.Frames) == 0 {
		return nil, fmt.Errorf("strg: empty segment")
	}
	if cfg.SimThreshold <= 0 {
		conc := cfg.Concurrency
		cfg = DefaultConfig()
		cfg.Concurrency = conc
	}
	s := &STRG{
		Segment: seg,
		Frames:  make([]*graph.Graph, len(seg.Frames)),
		frameOf: make(map[graph.NodeID]int),
		next:    make(map[graph.NodeID]graph.NodeID),
		inDeg:   make(map[graph.NodeID]int),
		tattr:   make(map[graph.NodeID]TemporalAttr),
		velIn:   make(map[graph.NodeID]geom.Vector),
	}
	// Frames are independent until tracking: node ID bases are known
	// upfront from the region counts, so every frame's RAG builds
	// concurrently. The frameOf map is filled afterwards (maps are not
	// safe for concurrent writes).
	bases := make([]graph.NodeID, len(seg.Frames))
	var base graph.NodeID
	for i, f := range seg.Frames {
		bases[i] = base
		base += graph.NodeID(len(f.Regions))
	}
	ragStart := time.Now()
	if err := parallel.ForEach(cfg.Concurrency, len(seg.Frames), func(i int) error {
		s.Frames[i] = rag.Build(seg.Frames[i], cfg.RAG, bases[i])
		return nil
	}); err != nil {
		return nil, fmt.Errorf("strg: building RAGs: %w", err)
	}
	ragBuildSeconds.Observe(time.Since(ragStart).Seconds())
	for i, g := range s.Frames {
		for _, id := range g.NodeIDs() {
			s.frameOf[id] = i
		}
	}
	trackStart := time.Now()
	matcher := graph.NewMatcher(cfg.Tol)
	// Per-frame neighborhood caches persist across the whole pair loop:
	// every interior frame participates in two consecutive pairs (as nxt,
	// then as cur), and rebuilding its stars for each role used to double
	// the construction's NeighborhoodGraph work. In parallel mode all
	// frames' stars are precomputed in one segment-wide pass — one pool
	// fan-out over every (frame, node) instead of a barrier per pair,
	// which is both less claim traffic and far better load balancing when
	// frame sizes are skewed.
	nbrs := make([]*frameNbrs, len(s.Frames))
	for i, g := range s.Frames {
		nbrs[i] = newFrameNbrs(g)
	}
	if parallel.Workers(cfg.Concurrency) > 1 && len(s.Frames) > 1 {
		offsets := make([]int, len(nbrs)+1)
		for i, fn := range nbrs {
			offsets[i+1] = offsets[i] + len(fn.ids)
		}
		mustRun(parallel.ForEach(cfg.Concurrency, offsets[len(nbrs)], func(k int) error {
			fi := sort.Search(len(offsets), func(i int) bool { return offsets[i] > k }) - 1
			fn := nbrs[fi]
			j := k - offsets[fi]
			fn.gn[j] = fn.g.NeighborhoodGraph(fn.ids[j])
			return nil
		}))
		for _, fn := range nbrs {
			fn.full = true
		}
	}
	for m := 0; m+1 < len(s.Frames); m++ {
		s.trackPair(matcher, cfg, nbrs[m], nbrs[m+1])
	}
	if cfg.BridgeFrames > 0 {
		s.bridgeGaps(cfg)
	}
	trackSeconds.Observe(time.Since(trackStart).Seconds())
	return s, nil
}

// bridgeGaps reconnects tracks across occlusion gaps: a chain tail at
// frame f is linked to a compatible chain head at frame f+1+g (g <=
// BridgeFrames) when the head sits near the tail's constant-velocity
// prediction. Matching is greedy by prediction error, one-to-one, and
// only considers moving tails (static regions do not get occluded out of
// existence — they are simply still there).
func (s *STRG) bridgeGaps(cfg Config) {
	type endpoint struct {
		id    graph.NodeID
		frame int
		node  graph.Node
		vel   geom.Vector
	}
	// Tails: nodes with no outgoing edge before the last frame.
	// Heads: nodes with no incoming edge after the first frame.
	var tails, heads []endpoint
	for fi, g := range s.Frames {
		for _, id := range sortedIDs(g) {
			n, _ := g.Node(id)
			if _, ok := s.next[id]; !ok && fi < len(s.Frames)-1 {
				v := s.velIn[id]
				if v.Len() >= cfg.MinObjectVelocity {
					tails = append(tails, endpoint{id, fi, n, v})
				}
			}
			if s.inDeg[id] == 0 && fi > 0 {
				heads = append(heads, endpoint{id, fi, n, geom.Vector{}})
			}
		}
	}
	type cand struct {
		tail, head int
		err        float64
		gap        int
	}
	var cands []cand
	for ti, t := range tails {
		for hi, h := range heads {
			gap := h.frame - t.frame
			if gap < 2 || gap > cfg.BridgeFrames+1 {
				continue
			}
			if !cfg.Tol.NodesCompatible(t.node.Attr, h.node.Attr) {
				continue
			}
			predicted := t.node.Attr.Centroid.Add(t.vel.Scale(float64(gap)))
			moveErr := predicted.Dist(h.node.Attr.Centroid)
			if cfg.MaxDisplacement > 0 && moveErr > cfg.MaxDisplacement*float64(gap) {
				continue
			}
			cands = append(cands, cand{ti, hi, moveErr, gap})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].err != cands[j].err {
			return cands[i].err < cands[j].err
		}
		if cands[i].tail != cands[j].tail {
			return cands[i].tail < cands[j].tail
		}
		return cands[i].head < cands[j].head
	})
	usedT := make(map[int]bool)
	usedH := make(map[int]bool)
	for _, c := range cands {
		if usedT[c.tail] || usedH[c.head] {
			continue
		}
		usedT[c.tail] = true
		usedH[c.head] = true
		t, h := tails[c.tail], heads[c.head]
		disp := h.node.Attr.Centroid.Sub(t.node.Attr.Centroid).Scale(1 / float64(c.gap))
		s.next[t.id] = h.id
		s.inDeg[h.id]++
		s.tattr[t.id] = TemporalAttr{Velocity: disp.Len(), Direction: disp.Angle()}
		s.velIn[h.id] = disp
	}
}

// frameNbrs caches one frame's tracking inputs: its node IDs in sorted
// order and each node's neighborhood graph, built at most once per node
// for the frame's lifetime (a frame is scored against both of its
// adjacent frames, and its stars are identical in both roles —
// NeighborhoodGraph is deterministic, so caching cannot change a score).
type frameNbrs struct {
	g   *graph.Graph
	ids []graph.NodeID
	gn  []*graph.Graph
	// full marks every slot as built, letting ensureAll skip its pool
	// fan-out after a segment-wide precompute.
	full bool
}

func newFrameNbrs(g *graph.Graph) *frameNbrs {
	ids := sortedIDs(g)
	return &frameNbrs{g: g, ids: ids, gn: make([]*graph.Graph, len(ids))}
}

// nbr returns node i's neighborhood graph, building it on first use. Lazy
// fill is single-writer only; concurrent scorers must ensureAll first.
func (f *frameNbrs) nbr(i int) *graph.Graph {
	if f.gn[i] == nil {
		f.gn[i] = f.g.NeighborhoodGraph(f.ids[i])
	}
	return f.gn[i]
}

// ensureAll fills every slot across the worker pool (each slot has
// exactly one writer), after which reads are race-free.
func (f *frameNbrs) ensureAll(workers int) {
	if f.full {
		return
	}
	mustRun(parallel.ForEach(workers, len(f.ids), func(i int) error {
		if f.gn[i] == nil {
			f.gn[i] = f.g.NeighborhoodGraph(f.ids[i])
		}
		return nil
	}))
	f.full = true
}

// link is one temporal correspondence produced by frame-pair matching.
type link struct {
	from, to graph.NodeID
	attr     TemporalAttr
	disp     geom.Vector
}

// matchFrames implements Algorithm 1 for one consecutive frame pair and
// returns the chosen one-to-one correspondences. velIn supplies each
// current-frame node's incoming displacement for constant-velocity
// prediction (nil entries mean no history). Differences from the paper's
// pseudocode, all forced by determinism and robustness rather than taste:
// (1) candidates are gated by attribute compatibility and by displacement
// from the constant-velocity prediction (a tracked region is expected near
// its previous position plus its previous motion — without the motion
// term, identical-looking regions swap identities the moment their paths
// cross); (2) correspondences are assigned one-to-one in descending match
// quality (structural quality discounted by prediction error). The
// pseudocode lets several nodes claim the same successor, which shatters
// the chains of identical-looking objects when they cross — and its
// first-isomorphic-match break would be nondeterministic over Go's
// randomized map iteration anyway.
func matchFrames(matcher *graph.Matcher, cfg Config, curN, nxtN *frameNbrs, velIn map[graph.NodeID]geom.Vector) []link {
	cur, nxt := curN.g, nxtN.g
	curIDs := curN.ids
	nxtIDs := nxtN.ids

	type cand struct {
		v, v2 graph.NodeID
		score float64
	}
	// scoreNode produces one current node's gated, scored candidates. It
	// reads only immutable state (the two RAGs, velIn between stitching
	// rounds, the neighborhood caches), so independent nodes score
	// concurrently; concatenating the per-node lists in curIDs order
	// reproduces the sequential candidate order exactly.
	scoreNode := func(v graph.NodeID, gv *graph.Graph, gnNxt func(j int) *graph.Graph) []cand {
		vn, _ := cur.Node(v)
		// Constant-velocity prediction: where the region should be next.
		predicted := vn.Attr.Centroid.Add(velIn[v])
		var out []cand
		for j, v2 := range nxtIDs {
			v2n, _ := nxt.Node(v2)
			if !cfg.Tol.NodesCompatible(vn.Attr, v2n.Attr) {
				continue
			}
			moveErr := predicted.Dist(v2n.Attr.Centroid)
			if cfg.MaxDisplacement > 0 && moveErr > cfg.MaxDisplacement {
				continue
			}
			gv2 := gnNxt(j)
			// Structural quality: 1 for isomorphic neighborhoods, the
			// SimGraph value above T_sim otherwise. The motion-prediction
			// error discounts it, so a structurally perfect but
			// kinematically absurd correspondence loses to a plausible
			// near-match — the situation at every path crossing of two
			// similar-looking objects.
			quality := -1.0
			if _, ok := matcher.Isomorphic(gv, gv2); ok {
				quality = 1
			} else if sim := matcher.SimGraph(gv, gv2); sim > cfg.SimThreshold {
				quality = sim
			}
			if quality < 0 {
				continue
			}
			if cfg.MaxDisplacement > 0 {
				quality -= moveErr / cfg.MaxDisplacement
			}
			out = append(out, cand{v: v, v2: v2, score: quality})
		}
		return out
	}

	var cands []cand
	if parallel.Workers(cfg.Concurrency) <= 1 || len(curIDs) < 2 {
		// Sequential path: neighborhood graphs built lazily into the
		// persistent per-frame cache — the work profile the paper's
		// Algorithm 1 implies, minus rebuilding stars the previous pair
		// (or, online, the previous frame) already built.
		for i, v := range curIDs {
			cands = append(cands, scoreNode(v, curN.nbr(i), nxtN.nbr)...)
		}
	} else {
		// Parallel path: make sure both frames' caches are complete (a
		// no-op after Build's segment-wide precompute), then score
		// current-frame nodes concurrently. Candidate values and order
		// match the sequential path bit for bit; only the schedule
		// differs.
		curN.ensureAll(cfg.Concurrency)
		nxtN.ensureAll(cfg.Concurrency)
		byIdx := func(j int) *graph.Graph { return nxtN.gn[j] }
		perNode, err := parallel.Map(cfg.Concurrency, len(curIDs), func(i int) ([]cand, error) {
			return scoreNode(curIDs[i], curN.gn[i], byIdx), nil
		})
		mustRun(err)
		for _, cs := range perNode {
			cands = append(cands, cs...)
		}
	}
	// Best matches first; ties break on node IDs for determinism.
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.score != b.score {
			return a.score > b.score
		}
		if a.v != b.v {
			return a.v < b.v
		}
		return a.v2 < b.v2
	})
	usedCur := make(map[graph.NodeID]bool, len(curIDs))
	usedNxt := make(map[graph.NodeID]bool, len(nxtIDs))
	var links []link
	for _, c := range cands {
		if usedCur[c.v] || usedNxt[c.v2] {
			continue
		}
		usedCur[c.v] = true
		usedNxt[c.v2] = true
		vn, _ := cur.Node(c.v)
		cn, _ := nxt.Node(c.v2)
		disp := cn.Attr.Centroid.Sub(vn.Attr.Centroid)
		links = append(links, link{
			from: c.v,
			to:   c.v2,
			attr: TemporalAttr{Velocity: disp.Len(), Direction: disp.Angle()},
			disp: disp,
		})
	}
	return links
}

// trackPair applies matchFrames' links to the STRG's temporal-edge maps.
func (s *STRG) trackPair(matcher *graph.Matcher, cfg Config, cur, nxt *frameNbrs) {
	for _, l := range matchFrames(matcher, cfg, cur, nxt, s.velIn) {
		s.next[l.from] = l.to
		s.inDeg[l.to]++
		s.tattr[l.from] = l.attr
		s.velIn[l.to] = l.disp
	}
}

func sortedIDs(g *graph.Graph) []graph.NodeID {
	ids := g.NodeIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Chain is one maximal temporal path of tracked nodes — an Object Region
// Graph (Definition 8 with empty spatial edge set) before the
// foreground/background classification.
type Chain struct {
	Nodes  []graph.NodeID
	Frames []int
	Attrs  []TemporalAttr // Attrs[i] is the edge Nodes[i] -> Nodes[i+1]
}

// Len returns the number of nodes in the chain.
func (c *Chain) Len() int { return len(c.Nodes) }

// MeanVelocity returns the average temporal-edge velocity of the chain, or
// 0 for single-node chains.
func (c *Chain) MeanVelocity() float64 {
	if len(c.Attrs) == 0 {
		return 0
	}
	var sum float64
	for _, a := range c.Attrs {
		sum += a.Velocity
	}
	return sum / float64(len(c.Attrs))
}

// MeanDirection returns the circular mean of the chain's edge directions.
// Only edges moving faster than still-stand noise contribute; it returns 0
// for chains with no such edge.
func (c *Chain) MeanDirection() float64 {
	var sx, sy, n float64
	for _, a := range c.Attrs {
		if a.Velocity < 1e-9 {
			continue
		}
		sx += a.Velocity * math.Cos(a.Direction)
		sy += a.Velocity * math.Sin(a.Direction)
		n++
	}
	if n == 0 {
		return 0
	}
	return geom.Vec(sx, sy).Angle()
}

// Chains extracts every maximal temporal path from the STRG. A node with
// multiple temporal predecessors is claimed by the first chain reaching it
// (frame order, then node ID), so chains never share nodes.
func (s *STRG) Chains() []*Chain {
	claimed := make(map[graph.NodeID]bool, len(s.frameOf))
	var chains []*Chain
	for fi := range s.Frames {
		for _, start := range sortedIDs(s.Frames[fi]) {
			if claimed[start] || s.inDeg[start] > 0 {
				continue
			}
			chains = append(chains, s.followChain(start, claimed))
		}
	}
	// Nodes whose only predecessors were claimed by other chains can still
	// be unvisited chain heads (convergent tracking); sweep them up.
	for fi := range s.Frames {
		for _, start := range sortedIDs(s.Frames[fi]) {
			if !claimed[start] {
				chains = append(chains, s.followChain(start, claimed))
			}
		}
	}
	return chains
}

func (s *STRG) followChain(start graph.NodeID, claimed map[graph.NodeID]bool) *Chain {
	c := &Chain{}
	cur := start
	for {
		claimed[cur] = true
		c.Nodes = append(c.Nodes, cur)
		c.Frames = append(c.Frames, s.frameOf[cur])
		nxt, ok := s.next[cur]
		if !ok || claimed[nxt] {
			break
		}
		c.Attrs = append(c.Attrs, s.tattr[cur])
		cur = nxt
	}
	return c
}
