package strg

import (
	"fmt"
	"sort"

	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/rag"
	"strgindex/internal/video"
)

// BuilderState is the serializable state of an OnlineBuilder: everything
// a durable restart needs to resume a live feed mid-stream and keep
// emitting exactly the Object Graphs an uninterrupted run would have.
// All map-shaped state is flattened into sorted slices so the gob (or
// JSON) bytes of a checkpoint are themselves deterministic — a feed
// journal that embeds checkpoints stays byte-reproducible.
//
// The previous frame's RAG and neighborhood cache are not stored:
// RestoreOnlineBuilder rebuilds them from LastFrame, which is cheaper
// than serializing graphs and provably identical (rag.Build is a pure
// function of the frame and the node-ID base).
type BuilderState struct {
	// Frame is the next frame index the builder will consume.
	Frame int
	// BaseID is the next node-ID block (graph.NodeID).
	BaseID int
	// NextOG numbers the next emitted Object Graph.
	NextOG int
	// LastFrame is the most recently consumed frame, nil right after a
	// Flush (or before the first frame), when tracking has no previous
	// frame to link against.
	LastFrame *video.Frame
	// VelIn lists each current-tail node's incoming displacement, sorted
	// by node ID.
	VelIn []VelEntry
	// Open lists the open chains sorted by tail node ID; Closed lists the
	// pending closed chains in closure order (Tail is -1 there).
	Open   []ChainState
	Closed []ChainState
}

// VelEntry is one node's incoming displacement vector.
type VelEntry struct {
	Node   int
	DX, DY float64
}

// LabelCount is one ground-truth label's sample count within a chain.
type LabelCount struct {
	Label string
	Count int
}

// ChainState is one sample chain's serialized form.
type ChainState struct {
	// Tail is the chain's current tail node ID for open chains, -1 for
	// closed ones.
	Tail      int
	Frames    []int
	Centroids []geom.Point
	Sizes     []float64
	Labels    []LabelCount
	Attrs     []TemporalAttr
}

func chainState(tail int, c *sampleChain) ChainState {
	st := ChainState{
		Tail:      tail,
		Frames:    append([]int(nil), c.frames...),
		Centroids: append([]geom.Point(nil), c.centroids...),
		Sizes:     append([]float64(nil), c.sizes...),
		Attrs:     append([]TemporalAttr(nil), c.attrs...),
	}
	for l, n := range c.labels {
		st.Labels = append(st.Labels, LabelCount{Label: l, Count: n})
	}
	sort.Slice(st.Labels, func(i, j int) bool { return st.Labels[i].Label < st.Labels[j].Label })
	return st
}

func (st ChainState) chain() *sampleChain {
	c := &sampleChain{
		frames:    append([]int(nil), st.Frames...),
		centroids: append([]geom.Point(nil), st.Centroids...),
		sizes:     append([]float64(nil), st.Sizes...),
		labels:    make(map[string]int, len(st.Labels)),
		attrs:     append([]TemporalAttr(nil), st.Attrs...),
	}
	for _, lc := range st.Labels {
		c.labels[lc.Label] = lc.Count
	}
	return c
}

// Checkpoint captures the builder's state. The returned value shares no
// mutable storage with the builder, so it stays valid while the builder
// keeps consuming frames.
func (b *OnlineBuilder) Checkpoint() *BuilderState {
	st := &BuilderState{
		Frame:  b.frame,
		BaseID: int(b.baseID),
		NextOG: b.nextOG,
	}
	if b.last != nil {
		lf := video.Frame{Index: b.last.Index, Regions: append([]video.Region(nil), b.last.Regions...)}
		st.LastFrame = &lf
	}
	for id, v := range b.velIn {
		st.VelIn = append(st.VelIn, VelEntry{Node: int(id), DX: v.DX, DY: v.DY})
	}
	sort.Slice(st.VelIn, func(i, j int) bool { return st.VelIn[i].Node < st.VelIn[j].Node })
	for _, id := range sortedTails(b.open) {
		st.Open = append(st.Open, chainState(int(id), b.open[id]))
	}
	for _, c := range b.closed {
		st.Closed = append(st.Closed, chainState(-1, c))
	}
	return st
}

// RestoreOnlineBuilder reconstructs a builder from a checkpoint taken
// with the same Config. Feeding the restored builder the frames that
// followed the checkpoint produces exactly the emissions the original
// builder would have produced — proven frame-by-frame by the checkpoint
// tests.
func RestoreOnlineBuilder(cfg Config, st *BuilderState) (*OnlineBuilder, error) {
	if st == nil {
		return nil, fmt.Errorf("strg: nil builder state")
	}
	b := NewOnlineBuilder(cfg)
	b.frame = st.Frame
	b.baseID = graph.NodeID(st.BaseID)
	b.nextOG = st.NextOG
	for _, e := range st.VelIn {
		b.velIn[graph.NodeID(e.Node)] = geom.Vec(e.DX, e.DY)
	}
	for _, cs := range st.Open {
		if cs.Tail < 0 {
			return nil, fmt.Errorf("strg: open chain without a tail node")
		}
		b.open[graph.NodeID(cs.Tail)] = cs.chain()
	}
	for _, cs := range st.Closed {
		b.closed = append(b.closed, cs.chain())
	}
	if st.LastFrame != nil {
		// Rebuild the previous frame's RAG under the node-ID base it was
		// originally built at, so open-chain tail IDs resolve to the same
		// nodes. The neighborhood cache refills lazily and identically.
		base := graph.NodeID(st.BaseID - len(st.LastFrame.Regions))
		if base < 0 {
			return nil, fmt.Errorf("strg: checkpoint base ID %d below the last frame's %d regions",
				st.BaseID, len(st.LastFrame.Regions))
		}
		lf := video.Frame{Index: st.LastFrame.Index, Regions: append([]video.Region(nil), st.LastFrame.Regions...)}
		b.prev = newFrameNbrs(rag.Build(lf, b.cfg.RAG, base))
		b.last = &lf
	}
	return b, nil
}
