package strg

import (
	"testing"

	"strgindex/internal/geom"
	"strgindex/internal/video"
)

// TestSimThresholdSweep verifies the tracking ablation DESIGN.md calls
// out: a permissive T_sim keeps objects tracked; an absurd threshold (> 1)
// disables the SimGraph fallback entirely and fragments tracks into more,
// shorter chains.
func TestSimThresholdSweep(t *testing.T) {
	obj := personSpec("walker", []geom.Point{geom.Pt(30, 120), geom.Pt(290, 120)}, 0, 12)
	cfg := video.SceneConfig{
		Name: "sweep", Width: 320, Height: 240, FPS: 12, Frames: 12,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: 1.5, Seed: 5,
		Objects: []video.ObjectSpec{obj},
	}
	seg, err := video.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chainCount := func(tsim float64) int {
		c := DefaultConfig()
		c.SimThreshold = tsim
		s, err := Build(seg, c)
		if err != nil {
			t.Fatal(err)
		}
		return len(s.Chains())
	}
	loose := chainCount(0.3)
	strict := chainCount(1.1) // SimGraph can never exceed 1: fallback off
	if strict < loose {
		t.Errorf("disabling the SimGraph fallback produced fewer chains (%d) than the loose threshold (%d)", strict, loose)
	}
}

// TestMaxDisplacementGate verifies the tracking gate: with a gate smaller
// than the object's per-frame velocity the object cannot be tracked at
// all, while the background still is.
func TestMaxDisplacementGate(t *testing.T) {
	obj := personSpec("runner", []geom.Point{geom.Pt(20, 120), geom.Pt(300, 120)}, 0, 12)
	cfg := video.SceneConfig{
		Name: "gate", Width: 320, Height: 240, FPS: 12, Frames: 12,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: 0, Seed: 6,
		Objects: []video.ObjectSpec{obj},
	}
	seg, err := video.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.MaxDisplacement = 5 // runner moves ~25 px/frame
	s, err := Build(seg, c)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Decompose(c)
	if len(d.OGs) != 0 {
		t.Errorf("gated tracking still produced %d OGs", len(d.OGs))
	}
	// The background still tracks into 12 chains; the orphaned object
	// regions (3 parts x 12 frames, untrackable under the gate) fall into
	// the background pool as single-node chains: 12 + 36 = 48.
	if got := d.BG.Order(); got != 48 {
		t.Errorf("BG order = %d, want 48 (12 background + 36 orphaned object chains)", got)
	}
}

// TestMinORGLengthFiltersNoise verifies that raising MinORGLength drops
// short tracks.
func TestMinORGLengthFiltersNoise(t *testing.T) {
	// An object visible for only 3 frames.
	obj := personSpec("blip", []geom.Point{geom.Pt(100, 50), geom.Pt(160, 50)}, 4, 7)
	cfg := video.SceneConfig{
		Name: "short", Width: 320, Height: 240, FPS: 12, Frames: 12,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: 0, Seed: 7,
		Objects: []video.ObjectSpec{obj},
	}
	seg, err := video.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.MinORGLength = 2
	s, err := Build(seg, c)
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Decompose(c); len(d.OGs) == 0 {
		t.Error("3-frame object not extracted with MinORGLength = 2")
	}
	c.MinORGLength = 6
	if d := s.Decompose(c); len(d.OGs) != 0 {
		t.Error("3-frame object extracted despite MinORGLength = 6")
	}
}

// TestMergeVelocityTolSeparatesCounterMovers: two objects passing each
// other in opposite directions must never merge regardless of proximity.
func TestMergeVelocityTolSeparatesCounterMovers(t *testing.T) {
	east := personSpec("east", []geom.Point{geom.Pt(20, 118), geom.Pt(300, 118)}, 0, 12)
	west := personSpec("west", []geom.Point{geom.Pt(300, 122), geom.Pt(20, 122)}, 0, 12)
	// Different shirt colors so tracking keeps them apart.
	east.Parts[1].Color.G = 0.9
	cfg := video.SceneConfig{
		Name: "pass", Width: 320, Height: 240, FPS: 12, Frames: 12,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: 0, Seed: 8,
		Objects: []video.ObjectSpec{east, west},
	}
	seg, err := video.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(seg, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := s.Decompose(DefaultConfig())
	labels := map[string]int{}
	for _, og := range d.OGs {
		labels[og.Label]++
	}
	if labels["east"] == 0 || labels["west"] == 0 {
		t.Errorf("counter-moving objects were merged or lost: %v", labels)
	}
}
