package strg

import (
	"math"
	"sort"

	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/rag"
	"strgindex/internal/video"
)

// OnlineBuilder runs the STRG pipeline incrementally: frames stream in one
// at a time, chains extend as the tracker links regions, and finished
// Object Graphs are emitted as soon as no still-open chain could merge
// with them — the shape a live surveillance ingest needs (the paper's
// "real-time systems such as video surveillance" motivation for fast
// cluster building). Memory stays proportional to the open chains plus one
// frame, not to the segment length.
type OnlineBuilder struct {
	cfg     Config
	matcher *graph.Matcher

	frame int // next frame index to consume
	// prev carries the previous frame's RAG with its neighborhood cache:
	// the frame was tracking's nxt last round and becomes cur this round,
	// so its lazily-built stars are reused instead of rebuilt.
	prev *frameNbrs
	// last is the raw frame prev was built from — the only input needed
	// to rebuild prev deterministically after a Checkpoint/Restore cycle.
	last   *video.Frame
	baseID graph.NodeID // next node ID block
	velIn  map[graph.NodeID]geom.Vector

	// open maps a chain's current tail node to the chain.
	open map[graph.NodeID]*sampleChain
	// closed chains await grouping into OGs.
	closed []*sampleChain
	nextOG int
}

// sampleChain is a chain carried as raw samples (the online builder drops
// graphs as soon as tracking leaves them behind).
type sampleChain struct {
	frames    []int
	centroids []geom.Point
	sizes     []float64
	labels    map[string]int
	// attrs[i] is the temporal edge leaving sample i.
	attrs []TemporalAttr
}

func (c *sampleChain) start() int { return c.frames[0] }
func (c *sampleChain) end() int   { return c.frames[len(c.frames)-1] }

func (c *sampleChain) meanVelocity() float64 {
	if len(c.attrs) == 0 {
		return 0
	}
	var sum float64
	for _, a := range c.attrs {
		sum += a.Velocity
	}
	return sum / float64(len(c.attrs))
}

// NewOnlineBuilder creates a streaming builder.
func NewOnlineBuilder(cfg Config) *OnlineBuilder {
	if cfg.SimThreshold <= 0 {
		cfg = DefaultConfig()
	}
	return &OnlineBuilder{
		cfg:     cfg,
		matcher: graph.NewMatcher(cfg.Tol),
		velIn:   make(map[graph.NodeID]geom.Vector),
		open:    make(map[graph.NodeID]*sampleChain),
	}
}

// AddFrame consumes the next frame and returns any Object Graphs that
// became final.
func (b *OnlineBuilder) AddFrame(f video.Frame) []*OG {
	g := rag.Build(f, b.cfg.RAG, b.baseID)
	b.baseID += graph.NodeID(len(f.Regions))
	gN := newFrameNbrs(g)

	extended := make(map[graph.NodeID]bool) // new-frame nodes that continue a chain
	if b.prev != nil {
		links := matchFrames(b.matcher, b.cfg, b.prev, gN, b.velIn)
		newVel := make(map[graph.NodeID]geom.Vector, len(links))
		newOpen := make(map[graph.NodeID]*sampleChain, len(links))
		for _, l := range links {
			chain := b.open[l.from]
			if chain == nil {
				continue // tail already consumed (cannot happen: links are 1-1)
			}
			delete(b.open, l.from)
			chain.attrs = append(chain.attrs, l.attr)
			appendSample(chain, g, l.to, b.frame)
			newOpen[l.to] = chain
			newVel[l.to] = l.disp
			extended[l.to] = true
		}
		// Chains whose tail found no successor are closed — in ascending
		// tail-node order, so the closure order (and through grouping, the
		// emitted OG numbering) is a pure function of the frame stream
		// rather than of map iteration. Replay determinism depends on it.
		for _, id := range sortedTails(b.open) {
			b.closed = append(b.closed, b.open[id])
		}
		b.open = newOpen
		b.velIn = newVel
	}
	// Unmatched new-frame nodes start chains.
	for _, id := range gN.ids {
		if !extended[id] {
			chain := &sampleChain{labels: make(map[string]int)}
			appendSample(chain, g, id, b.frame)
			b.open[id] = chain
		}
	}
	b.prev = gN
	b.last = &f
	b.frame++
	return b.emitReady(false)
}

// Flush closes every chain and emits the remaining Object Graphs. The
// builder is reusable afterwards (frame numbering continues).
func (b *OnlineBuilder) Flush() []*OG {
	for _, id := range sortedTails(b.open) {
		b.closed = append(b.closed, b.open[id])
	}
	b.open = make(map[graph.NodeID]*sampleChain)
	b.velIn = make(map[graph.NodeID]geom.Vector)
	b.prev = nil
	b.last = nil
	return b.emitReady(true)
}

// sortedTails returns the open chains' tail node IDs in ascending order:
// the deterministic closure order AddFrame and Flush use in place of map
// iteration.
func sortedTails(open map[graph.NodeID]*sampleChain) []graph.NodeID {
	ids := make([]graph.NodeID, 0, len(open))
	for id := range open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// FrameCount returns the number of frames consumed so far.
func (b *OnlineBuilder) FrameCount() int { return b.frame }

// OpenMoving counts the open chains that currently look like objects
// (length >= 2 with mean velocity at or above MinObjectVelocity). A live
// feed uses zero as its quiescence signal: cutting a commit boundary here
// cannot split an object chain, only background/noise chains that the
// decomposition drops anyway.
func (b *OnlineBuilder) OpenMoving() int {
	n := 0
	for _, c := range b.open {
		if len(c.frames) >= 2 && c.meanVelocity() >= b.cfg.MinObjectVelocity {
			n++
		}
	}
	return n
}

func appendSample(c *sampleChain, g *graph.Graph, id graph.NodeID, frame int) {
	n, _ := g.Node(id)
	c.frames = append(c.frames, frame)
	c.centroids = append(c.centroids, n.Attr.Centroid)
	c.sizes = append(c.sizes, n.Attr.Size)
	if n.Attr.Label != "" {
		c.labels[n.Attr.Label]++
	}
}

// emitReady groups closed object chains whose merge partners cannot still
// be open and materializes them. With force, everything pending is
// emitted.
func (b *OnlineBuilder) emitReady(force bool) []*OG {
	if len(b.closed) == 0 {
		return nil
	}
	// Only moving chains of sufficient length become OGs; the rest is
	// background/noise and is dropped at closure.
	var objects []*sampleChain
	for _, c := range b.closed {
		if len(c.frames) >= b.cfg.MinORGLength && c.meanVelocity() >= b.cfg.MinObjectVelocity {
			objects = append(objects, c)
		}
	}
	// An open moving chain may yet close and merge with a pending one, so
	// any pending chain overlapping such a chain's lifetime stays pending.
	blocked := func(c *sampleChain) bool {
		if force {
			return false
		}
		for _, o := range b.open {
			if len(o.frames) >= 2 && o.meanVelocity() >= b.cfg.MinObjectVelocity && o.start() <= c.end() {
				return true
			}
		}
		return false
	}
	var ready, pending []*sampleChain
	for _, c := range objects {
		if blocked(c) {
			pending = append(pending, c)
		} else {
			ready = append(ready, c)
		}
	}
	// Keep only pending object chains (plus nothing else) for next time.
	b.closed = pending
	if len(ready) == 0 {
		return nil
	}
	return b.groupAndEmit(ready)
}

// groupAndEmit merges ready chains into OGs with the same criteria as the
// batch decomposition.
func (b *OnlineBuilder) groupAndEmit(chains []*sampleChain) []*OG {
	n := len(chains)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if chainsMergeable(chains[i], chains[j], b.cfg) {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[rj] = ri
				}
			}
		}
	}
	groups := make(map[int][]*sampleChain)
	for i, c := range chains {
		groups[find(i)] = append(groups[find(i)], c)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	var out []*OG
	for _, r := range roots {
		og := materializeSampleOG(groups[r])
		og.ID = b.nextOG
		b.nextOG++
		out = append(out, og)
	}
	return out
}

// chainsMergeable mirrors shouldMerge for sample chains.
func chainsMergeable(a, c *sampleChain, cfg Config) bool {
	lo := max(a.start(), c.start())
	hi := min(a.end(), c.end())
	if hi < lo {
		return false
	}
	shorter := min(len(a.frames), len(c.frames))
	if float64(hi-lo+1) < 0.5*float64(shorter) {
		return false
	}
	var velDiffs, proxDiffs []float64
	for f := lo; f <= hi; f++ {
		pa, oka := sampleAt(a, f)
		pc, okc := sampleAt(c, f)
		if oka && okc {
			proxDiffs = append(proxDiffs, pa.Dist(pc))
		}
		va, oka := velocityAt(a, f)
		vc, okc := velocityAt(c, f)
		if oka && okc {
			velDiffs = append(velDiffs, va.Add(vc.Scale(-1)).Len())
		}
	}
	if len(proxDiffs) == 0 || len(velDiffs) == 0 {
		return false
	}
	if median(velDiffs) > cfg.MergeVelocityTol {
		return false
	}
	return median(proxDiffs) <= cfg.MergeProximity
}

func sampleAt(c *sampleChain, frame int) (geom.Point, bool) {
	for i, f := range c.frames {
		if f == frame {
			return c.centroids[i], true
		}
	}
	return geom.Point{}, false
}

func velocityAt(c *sampleChain, frame int) (geom.Vector, bool) {
	for i, f := range c.frames {
		if f == frame && i < len(c.attrs) {
			a := c.attrs[i]
			return vecFromPolar(a.Velocity, a.Direction), true
		}
	}
	return geom.Vector{}, false
}

// materializeSampleOG fuses sample chains like materializeOG fuses node
// chains: size-weighted centroid per frame, sizes summed.
func materializeSampleOG(group []*sampleChain) *OG {
	type acc struct {
		wx, wy, w float64
	}
	perFrame := make(map[int]*acc)
	labels := make(map[string]int)
	for _, c := range group {
		for i, f := range c.frames {
			a := perFrame[f]
			if a == nil {
				a = &acc{}
				perFrame[f] = a
			}
			w := c.sizes[i]
			if w <= 0 {
				w = 1
			}
			a.wx += c.centroids[i].X * w
			a.wy += c.centroids[i].Y * w
			a.w += w
		}
		for l, n := range c.labels {
			labels[l] += n
		}
	}
	frames := make([]int, 0, len(perFrame))
	for f := range perFrame {
		frames = append(frames, f)
	}
	sort.Ints(frames)
	og := &OG{
		Frames:    frames,
		Centroids: make([]geom.Point, len(frames)),
		Sizes:     make([]float64, len(frames)),
	}
	for i, f := range frames {
		a := perFrame[f]
		og.Centroids[i] = geom.Pt(a.wx/a.w, a.wy/a.w)
		og.Sizes[i] = a.w
	}
	best, bestCount := "", 0
	for label, count := range labels {
		if count > bestCount || (count == bestCount && label < best) {
			best, bestCount = label, count
		}
	}
	og.Label = best
	og.Clip = video.ClipRef{FrameStart: og.StartFrame(), FrameEnd: og.EndFrame() + 1}
	return og
}

func vecFromPolar(speed, dir float64) geom.Vector {
	return geom.Vec(speed*math.Cos(dir), speed*math.Sin(dir))
}
