package strg

import "strgindex/internal/obs"

// Construction instrumentation: Build observes its two dominant phases per
// segment, so an operator can tell whether ingest time goes to per-frame
// segmentation (RAG construction) or to Algorithm 1's temporal stitching.
var (
	ragBuildSeconds = obs.Default.Histogram("strg_build_rag_seconds",
		"per-segment RAG construction time in seconds", nil, nil)
	trackSeconds = obs.Default.Histogram("strg_build_track_seconds",
		"per-segment Algorithm 1 tracking time in seconds (incl. occlusion bridging)", nil, nil)
)
