package strg

import (
	"math"
	"sort"

	"strgindex/internal/dist"
	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/video"
)

// OG is an Object Graph (Section 2.3.2): the merger of the Object Region
// Graphs belonging to one moving object. It is the unit of clustering and
// indexing. Per sample (frame) it records the merged centroid (size-weighted
// over constituent regions), total size and the contributing STRG nodes.
type OG struct {
	ID    int
	Label string // dominant ground-truth region label, "" when unknown
	Clip  video.ClipRef

	Frames    []int
	Centroids []geom.Point
	Sizes     []float64
	NodeIDs   [][]graph.NodeID
}

// Len returns the number of temporal samples.
func (og *OG) Len() int { return len(og.Frames) }

// StartFrame returns the first frame the object appears in; -1 when empty.
func (og *OG) StartFrame() int {
	if len(og.Frames) == 0 {
		return -1
	}
	return og.Frames[0]
}

// EndFrame returns the last frame the object appears in; -1 when empty.
func (og *OG) EndFrame() int {
	if len(og.Frames) == 0 {
		return -1
	}
	return og.Frames[len(og.Frames)-1]
}

// Sequence returns the OG's node-attribute sequence for distance
// computations: the centroid trajectory as 2-D vectors.
func (og *OG) Sequence() dist.Sequence {
	seq := make(dist.Sequence, len(og.Centroids))
	for i, c := range og.Centroids {
		seq[i] = dist.Vec{c.X, c.Y}
	}
	return seq
}

// MemoryBytes estimates the OG's in-memory footprint for the size
// accounting of Section 5.4.
func (og *OG) MemoryBytes() int {
	const sampleBytes = 8 + 16 + 8 // frame + centroid + size
	nodeRefs := 0
	for _, ids := range og.NodeIDs {
		nodeRefs += len(ids)
	}
	return og.Len()*sampleBytes + nodeRefs*8
}

// Decomposition is the result of decomposing an STRG per Section 2.3:
// the Object Graphs, the collapsed Background Graph and bookkeeping for
// size accounting.
type Decomposition struct {
	OGs []*OG
	// BG is the single background graph of the segment: temporally stable
	// chains collapsed to one node each (Section 2.3.3).
	BG *graph.Graph
	// NumFrames is N of Equation 9.
	NumFrames int
	// NumBGChains counts the background chains collapsed into BG.
	NumBGChains int
}

// STRGSizeBytes evaluates Equation 9: Σ size(OG_m) + N × size(BG) — the
// footprint of storing the decomposed STRG with the background repeated in
// every frame.
func (d *Decomposition) STRGSizeBytes() int {
	total := d.NumFrames * d.BG.MemoryBytes()
	for _, og := range d.OGs {
		total += og.MemoryBytes()
	}
	return total
}

// Decompose splits the STRG into Object Graphs and the Background Graph.
// Chains faster than cfg.MinObjectVelocity become ORGs and are merged into
// OGs; the remaining (static) chains are collapsed into a single BG.
func (s *STRG) Decompose(cfg Config) *Decomposition {
	if cfg.SimThreshold <= 0 {
		cfg = DefaultConfig()
	}
	chains := s.Chains()
	var orgs []*Chain
	var bgChains []*Chain
	for _, c := range chains {
		if c.Len() >= cfg.MinORGLength && c.MeanVelocity() >= cfg.MinObjectVelocity {
			orgs = append(orgs, c)
		} else {
			bgChains = append(bgChains, c)
		}
	}
	d := &Decomposition{
		NumFrames:   len(s.Frames),
		NumBGChains: len(bgChains),
	}
	d.OGs = s.mergeORGs(orgs, cfg)
	d.BG = s.collapseBackground(bgChains)
	return d
}

// mergeORGs groups ORGs that belong to a single object (same velocity and
// moving direction while spatially together — Section 2.3.2) with
// union-find, then materializes one OG per group.
func (s *STRG) mergeORGs(orgs []*Chain, cfg Config) []*OG {
	n := len(orgs)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if s.shouldMerge(orgs[i], orgs[j], cfg) {
				union(i, j)
			}
		}
	}
	groups := make(map[int][]*Chain)
	for i, org := range orgs {
		root := find(i)
		groups[root] = append(groups[root], org)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)

	segName := ""
	if s.Segment != nil {
		segName = s.Segment.Name
	}
	ogs := make([]*OG, 0, len(roots))
	for idx, r := range roots {
		og := s.materializeOG(groups[r])
		og.ID = idx
		og.Clip = video.ClipRef{
			Segment:    segName,
			FrameStart: og.StartFrame(),
			FrameEnd:   og.EndFrame() + 1,
		}
		ogs = append(ogs, og)
	}
	return ogs
}

// shouldMerge decides whether two ORGs trace parts of the same object:
// overlapping lifetimes, matching mean velocity and direction, and
// spatial proximity over the shared frames.
func (s *STRG) shouldMerge(a, b *Chain, cfg Config) bool {
	if a.Len() == 0 || b.Len() == 0 {
		return false
	}
	aStart, aEnd := a.Frames[0], a.Frames[len(a.Frames)-1]
	bStart, bEnd := b.Frames[0], b.Frames[len(b.Frames)-1]
	lo := max(aStart, bStart)
	hi := min(aEnd, bEnd)
	if hi < lo {
		return false
	}
	overlap := hi - lo + 1
	shorter := min(a.Len(), b.Len())
	if float64(overlap) < 0.5*float64(shorter) {
		return false
	}
	// Instantaneous velocity agreement and spatial proximity over the
	// shared frames. Medians rather than means: a single-frame tracking
	// glitch (a region briefly jumping to the wrong correspondence) spikes
	// one frame's velocity without making the chains different objects.
	var velDiffs, proxDiffs []float64
	for fi := lo; fi <= hi; fi++ {
		pa, oka := s.chainCentroidAt(a, fi)
		pb, okb := s.chainCentroidAt(b, fi)
		if oka && okb {
			proxDiffs = append(proxDiffs, pa.Dist(pb))
		}
		va, oka := chainVelocityAt(a, fi)
		vb, okb := chainVelocityAt(b, fi)
		if oka && okb {
			velDiffs = append(velDiffs, va.Add(vb.Scale(-1)).Len())
		}
	}
	if len(proxDiffs) == 0 || len(velDiffs) == 0 {
		return false
	}
	if median(velDiffs) > cfg.MergeVelocityTol {
		return false
	}
	return median(proxDiffs) <= cfg.MergeProximity
}

// median returns the middle value of xs (average of the two middles for
// even lengths). xs is sorted in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// chainVelocityAt returns the velocity vector of the temporal edge leaving
// the chain's node at the given frame.
func chainVelocityAt(c *Chain, frame int) (geom.Vector, bool) {
	for i, f := range c.Frames {
		if f == frame {
			if i >= len(c.Attrs) {
				return geom.Vector{}, false
			}
			a := c.Attrs[i]
			return geom.Vec(a.Velocity*math.Cos(a.Direction), a.Velocity*math.Sin(a.Direction)), true
		}
	}
	return geom.Vector{}, false
}

func (s *STRG) chainCentroidAt(c *Chain, frame int) (geom.Point, bool) {
	for i, f := range c.Frames {
		if f == frame {
			n, ok := s.nodeOf(c.Nodes[i])
			if !ok {
				return geom.Point{}, false
			}
			return n.Attr.Centroid, true
		}
	}
	return geom.Point{}, false
}

func (s *STRG) nodeOf(id graph.NodeID) (graph.Node, bool) {
	fi, ok := s.frameOf[id]
	if !ok {
		return graph.Node{}, false
	}
	return s.Frames[fi].Node(id)
}

// materializeOG fuses a group of ORGs into one OG: per frame, the merged
// centroid is the size-weighted mean of the member regions and the size is
// their sum. The label is the most frequent non-empty region label.
func (s *STRG) materializeOG(group []*Chain) *OG {
	type acc struct {
		wx, wy, w float64
		nodes     []graph.NodeID
	}
	perFrame := make(map[int]*acc)
	labels := make(map[string]int)
	for _, c := range group {
		for i, id := range c.Nodes {
			n, ok := s.nodeOf(id)
			if !ok {
				continue
			}
			fi := c.Frames[i]
			a := perFrame[fi]
			if a == nil {
				a = &acc{}
				perFrame[fi] = a
			}
			w := n.Attr.Size
			if w <= 0 {
				w = 1
			}
			a.wx += n.Attr.Centroid.X * w
			a.wy += n.Attr.Centroid.Y * w
			a.w += w
			a.nodes = append(a.nodes, id)
			if n.Attr.Label != "" {
				labels[n.Attr.Label]++
			}
		}
	}
	frames := make([]int, 0, len(perFrame))
	for f := range perFrame {
		frames = append(frames, f)
	}
	sort.Ints(frames)
	og := &OG{
		Frames:    frames,
		Centroids: make([]geom.Point, len(frames)),
		Sizes:     make([]float64, len(frames)),
		NodeIDs:   make([][]graph.NodeID, len(frames)),
	}
	for i, f := range frames {
		a := perFrame[f]
		og.Centroids[i] = geom.Pt(a.wx/a.w, a.wy/a.w)
		og.Sizes[i] = a.w
		sort.Slice(a.nodes, func(x, y int) bool { return a.nodes[x] < a.nodes[y] })
		og.NodeIDs[i] = a.nodes
	}
	best, bestCount := "", 0
	for label, count := range labels {
		if count > bestCount || (count == bestCount && label < best) {
			best, bestCount = label, count
		}
	}
	og.Label = best
	return og
}

// collapseBackground overlaps the background chains along their temporal
// edges (Section 2.3.3): each chain becomes one BG node whose attributes
// are the per-frame averages, and two BG nodes share a spatial edge when
// their member regions were adjacent in some frame (attributes from the
// earliest such frame).
func (s *STRG) collapseBackground(chains []*Chain) *graph.Graph {
	bg := graph.New()
	memberOf := make(map[graph.NodeID]int) // STRG node -> chain index
	for ci, c := range chains {
		var sx, sy, ssize, sr, sg, sb float64
		count := 0
		for _, id := range c.Nodes {
			n, ok := s.nodeOf(id)
			if !ok {
				continue
			}
			memberOf[id] = ci
			sx += n.Attr.Centroid.X
			sy += n.Attr.Centroid.Y
			ssize += n.Attr.Size
			sr += n.Attr.Color.R
			sg += n.Attr.Color.G
			sb += n.Attr.Color.B
			count++
		}
		if count == 0 {
			continue
		}
		f := float64(count)
		bg.MustAddNode(graph.Node{
			ID: graph.NodeID(ci),
			Attr: graph.NodeAttr{
				Size:     ssize / f,
				Color:    graph.Color{R: sr / f, G: sg / f, B: sb / f},
				Centroid: geom.Pt(sx/f, sy/f),
			},
		})
	}
	// Spatial edges between collapsed chains, first adjacency wins.
	for _, g := range s.Frames {
		for _, e := range g.Edges() {
			ci, oki := memberOf[e.U]
			cj, okj := memberOf[e.V]
			if !oki || !okj || ci == cj {
				continue
			}
			u, v := graph.NodeID(ci), graph.NodeID(cj)
			if !bg.Has(u) || !bg.Has(v) || bg.HasEdge(u, v) {
				continue
			}
			if err := bg.AddEdge(u, v, e.Attr); err != nil {
				panic(err) // unreachable: endpoints checked above
			}
		}
	}
	return bg
}
