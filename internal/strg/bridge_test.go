package strg

import (
	"testing"

	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/video"
)

// occlusionScene builds a crossing: a large slow object sits mid-frame
// while a small fast one passes behind it and vanishes for a couple of
// frames.
func occlusionScene(t *testing.T) *video.Segment {
	t.Helper()
	seg, err := video.Generate(video.SceneConfig{
		Name: "occl", Width: 320, Height: 240, FPS: 12, Frames: 16,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: 0.3, Seed: 12,
		Occlusion: true,
		Objects: []video.ObjectSpec{
			{ // large stationary-ish blocker in the middle
				Label: "truck",
				Parts: []video.PartSpec{{Size: 5200, Color: graph.Color{R: 0.9, G: 0.8, B: 0.1}}},
				Path:  []geom.Point{geom.Pt(150, 120), geom.Pt(170, 120)},
				Start: 0, End: 16,
			},
			{ // small runner crossing behind it
				Label: "runner",
				Parts: []video.PartSpec{{Size: 260, Color: graph.Color{R: 0.1, G: 0.9, B: 0.9}}},
				Path:  []geom.Point{geom.Pt(20, 122), geom.Pt(300, 122)},
				Start: 0, End: 16,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

func TestOcclusionHidesRegions(t *testing.T) {
	seg := occlusionScene(t)
	hiddenFrames := 0
	for _, f := range seg.Frames {
		present := false
		for _, r := range f.Regions {
			if r.Label == "runner" {
				present = true
			}
		}
		if !present {
			hiddenFrames++
		}
	}
	if hiddenFrames == 0 {
		t.Fatal("occlusion never hid the runner; scene is miscalibrated")
	}
	if hiddenFrames > 8 {
		t.Fatalf("runner hidden for %d frames; scene is miscalibrated", hiddenFrames)
	}
}

func TestBridgingReconnectsOccludedTrack(t *testing.T) {
	seg := occlusionScene(t)

	countRunnerOGs := func(cfg Config) int {
		s, err := Build(seg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, og := range s.Decompose(cfg).OGs {
			if og.Label == "runner" {
				n++
			}
		}
		return n
	}

	noBridge := DefaultConfig()
	if got := countRunnerOGs(noBridge); got < 2 {
		t.Fatalf("without bridging the occluded track should fragment: got %d runner OGs", got)
	}

	bridge := DefaultConfig()
	bridge.BridgeFrames = 5
	if got := countRunnerOGs(bridge); got != 1 {
		t.Fatalf("with bridging, runner OGs = %d, want 1", got)
	}
}

func TestBridgedOGSpansTheGap(t *testing.T) {
	seg := occlusionScene(t)
	cfg := DefaultConfig()
	cfg.BridgeFrames = 5
	s, err := Build(seg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var runner *OG
	for _, og := range s.Decompose(cfg).OGs {
		if og.Label == "runner" {
			runner = og
		}
	}
	if runner == nil {
		t.Fatal("runner OG missing")
	}
	// The OG spans from early to late frames even though samples are
	// missing in the middle.
	if runner.StartFrame() > 3 || runner.EndFrame() < 12 {
		t.Errorf("bridged OG spans [%d, %d], want roughly [0, 15]", runner.StartFrame(), runner.EndFrame())
	}
	// Trajectory is still monotone eastbound across the gap.
	for i := 1; i < runner.Len(); i++ {
		if runner.Centroids[i].X <= runner.Centroids[i-1].X-5 {
			t.Errorf("trajectory reverses at sample %d: %v -> %v", i, runner.Centroids[i-1], runner.Centroids[i])
		}
	}
}

func TestBridgingDoesNotJoinDistinctObjects(t *testing.T) {
	// Two objects with a temporal gap but far apart spatially: no bridge.
	a := personSpec("first", []geom.Point{geom.Pt(30, 60), geom.Pt(150, 60)}, 0, 6)
	b := personSpec("second", []geom.Point{geom.Pt(30, 200), geom.Pt(150, 200)}, 8, 14)
	cfg := sceneWithObjects(14, 0.3, a, b)
	seg, err := video.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.BridgeFrames = 5
	s, err := Build(seg, c)
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]int{}
	for _, og := range s.Decompose(c).OGs {
		labels[og.Label]++
	}
	if labels["first"] != 1 || labels["second"] != 1 {
		t.Errorf("bridging merged distinct objects: %v", labels)
	}
}
