// Package faultfs abstracts the handful of filesystem operations the
// durability layer performs (open, append, fsync, atomic rename) behind a
// small interface, and provides a fault-injecting implementation that
// simulates crashes and media corruption: torn writes that persist only a
// prefix, fsync failures, short reads, and bit flips at configurable byte
// offsets.
//
// The production implementation is OS{}; tests wrap it in an Inject to
// prove that recovery handles every way a write can die halfway. The
// injection model is prefix-persistence: a torn write durably stores some
// prefix of the buffer and then the "disk" fails, after which every
// mutation on the filesystem errors — exactly the view a process sees
// when the kernel dies mid-write and the machine reboots.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// ErrInjected is the sentinel wrapped by every injected fault, so tests
// can tell a simulated crash from a real filesystem error.
var ErrInjected = errors.New("faultfs: injected fault")

// File is the subset of *os.File the durability layer uses.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Name() string
}

// FS is the filesystem surface the durability layer is written against.
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename is os.Rename (atomic within a directory on POSIX).
	Rename(oldpath, newpath string) error
	// Remove is os.Remove.
	Remove(name string) error
	// Stat is os.Stat.
	Stat(name string) (os.FileInfo, error)
	// ReadDir is os.ReadDir.
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll is os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs the directory itself, making a preceding rename or
	// create durable.
	SyncDir(name string) error
}

// OS is the production filesystem.
type OS struct{}

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Stat implements FS.
func (OS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

// ReadDir implements FS.
func (OS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// SyncDir implements FS.
func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// BitFlip corrupts one byte of one file at read time: every Read/ReadAt
// that covers Offset returns the byte XORed with Mask. It models silent
// media corruption that only checksums can catch.
type BitFlip struct {
	// Name matches the file's base name (filepath.Base), so tests don't
	// need to predict temporary directory prefixes.
	Name   string
	Offset int64
	Mask   byte
}

// Config describes the faults an Inject filesystem applies.
type Config struct {
	// WriteBudget is the total number of bytes that writes (including
	// truncates, renames and directory syncs, which consume 0 bytes but
	// are refused once the budget is exhausted) may durably persist
	// before the simulated crash: the write that crosses the budget
	// persists only the prefix that fits and fails, and every later
	// mutation fails. A negative budget means unlimited.
	WriteBudget int64
	// FailSyncAfter makes the (n+1)-th File.Sync call fail and the crash
	// begin there; 0 fails the first sync. A negative value disables it.
	FailSyncAfter int
	// MaxReadChunk caps the byte count a single Read/ReadAt returns
	// (short reads); 0 means unlimited. Correct callers use io.ReadFull
	// semantics and never notice.
	MaxReadChunk int
	// Flips lists read-time bit corruptions.
	Flips []BitFlip
}

// Inject wraps an FS and applies the configured faults. It is safe for
// concurrent use.
type Inject struct {
	under FS
	cfg   Config

	mu      sync.Mutex
	written int64
	syncs   int
	crashed bool
}

// NewInject returns an injecting filesystem over under (nil means OS{}).
func NewInject(under FS, cfg Config) *Inject {
	if under == nil {
		under = OS{}
	}
	if cfg.WriteBudget < 0 {
		cfg.WriteBudget = int64(^uint64(0) >> 1)
	}
	return &Inject{under: under, cfg: cfg}
}

// Crashed reports whether the simulated disk has failed (write budget
// exhausted or sync failure reached).
func (f *Inject) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// consume reserves n bytes of write budget, returning how many may be
// durably persisted and whether the disk is (now) crashed.
func (f *Inject) consume(n int) (allowed int, crashed bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, true
	}
	remaining := f.cfg.WriteBudget - f.written
	if int64(n) <= remaining {
		f.written += int64(n)
		return n, false
	}
	f.crashed = true
	if remaining < 0 {
		remaining = 0
	}
	f.written += remaining
	return int(remaining), true
}

// mutate gates a non-write mutation (rename, remove, truncate, mkdir,
// directory sync) on the disk still being alive.
func (f *Inject) mutate() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return fmt.Errorf("mutation after crash: %w", ErrInjected)
	}
	return nil
}

// OpenFile implements FS. Opening for writing counts as a mutation only
// when it can create or truncate the file.
func (f *Inject) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&(os.O_CREATE|os.O_TRUNC|os.O_APPEND|os.O_WRONLY|os.O_RDWR) != 0 {
		if err := f.mutate(); err != nil {
			return nil, err
		}
	}
	file, err := f.under.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{fs: f, under: file, name: name}, nil
}

// Rename implements FS.
func (f *Inject) Rename(oldpath, newpath string) error {
	if err := f.mutate(); err != nil {
		return err
	}
	return f.under.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *Inject) Remove(name string) error {
	if err := f.mutate(); err != nil {
		return err
	}
	return f.under.Remove(name)
}

// Stat implements FS.
func (f *Inject) Stat(name string) (os.FileInfo, error) { return f.under.Stat(name) }

// ReadDir implements FS.
func (f *Inject) ReadDir(name string) ([]os.DirEntry, error) { return f.under.ReadDir(name) }

// MkdirAll implements FS.
func (f *Inject) MkdirAll(path string, perm os.FileMode) error {
	if err := f.mutate(); err != nil {
		return err
	}
	return f.under.MkdirAll(path, perm)
}

// SyncDir implements FS.
func (f *Inject) SyncDir(name string) error {
	if err := f.mutate(); err != nil {
		return err
	}
	return f.under.SyncDir(name)
}

// injectFile applies the fault configuration to one open file.
type injectFile struct {
	fs    *Inject
	under File
	name  string
	// pos tracks the sequential read offset for bit flips on Read.
	pos int64
}

func (f *injectFile) Name() string { return f.name }

func (f *injectFile) Write(p []byte) (int, error) {
	allowed, crashed := f.fs.consume(len(p))
	if !crashed {
		return f.under.Write(p)
	}
	// Torn write: persist the prefix that fit the budget, then fail.
	n := 0
	if allowed > 0 {
		var err error
		n, err = f.under.Write(p[:allowed])
		if err != nil {
			return n, err
		}
	}
	return n, fmt.Errorf("torn write of %s after %d/%d bytes: %w", f.name, n, len(p), ErrInjected)
}

func (f *injectFile) Read(p []byte) (int, error) {
	if m := f.fs.cfg.MaxReadChunk; m > 0 && len(p) > m {
		p = p[:m]
	}
	n, err := f.under.Read(p)
	f.corrupt(p[:n], f.pos)
	f.pos += int64(n)
	return n, err
}

func (f *injectFile) ReadAt(p []byte, off int64) (int, error) {
	if m := f.fs.cfg.MaxReadChunk; m > 0 && len(p) > m {
		p = p[:m]
	}
	n, err := f.under.ReadAt(p, off)
	f.corrupt(p[:n], off)
	return n, err
}

// corrupt applies configured bit flips to a buffer read from offset off.
func (f *injectFile) corrupt(p []byte, off int64) {
	for _, flip := range f.fs.cfg.Flips {
		if flip.Name != filepath.Base(f.name) {
			continue
		}
		if i := flip.Offset - off; i >= 0 && i < int64(len(p)) {
			p[i] ^= flip.Mask
		}
	}
}

func (f *injectFile) Seek(offset int64, whence int) (int64, error) {
	pos, err := f.under.Seek(offset, whence)
	if err == nil {
		f.pos = pos
	}
	return pos, err
}

func (f *injectFile) Sync() error {
	f.fs.mu.Lock()
	n := f.fs.cfg.FailSyncAfter
	failNow := n >= 0 && f.fs.syncs >= n
	if failNow {
		f.fs.crashed = true
	}
	alreadyCrashed := f.fs.crashed
	f.fs.syncs++
	f.fs.mu.Unlock()
	if failNow || alreadyCrashed {
		return fmt.Errorf("fsync of %s: %w", f.name, ErrInjected)
	}
	return f.under.Sync()
}

func (f *injectFile) Truncate(size int64) error {
	if err := f.fs.mutate(); err != nil {
		return err
	}
	return f.under.Truncate(size)
}

func (f *injectFile) Close() error { return f.under.Close() }

// ReadFile reads a whole file through fsys.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var buf []byte
	chunk := make([]byte, 64<<10)
	for {
		n, err := f.Read(chunk)
		buf = append(buf, chunk[:n]...)
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// WriteAtomic durably replaces path with the bytes that write produces:
// the content goes to path+".tmp", is fsynced, atomically renamed over
// path, and the directory is fsynced so the rename itself survives a
// crash. On any error the temporary file is removed and path is
// untouched.
func WriteAtomic(fsys FS, path string, write func(io.Writer) error) (err error) {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			_ = fsys.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}
