package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// noFaults is the configuration under which Inject must behave exactly
// like the wrapped filesystem.
func noFaults() Config {
	return Config{WriteBudget: -1, FailSyncAfter: -1}
}

func TestInjectPassthrough(t *testing.T) {
	dir := t.TempDir()
	fs := NewInject(OS{}, noFaults())
	path := filepath.Join(dir, "f")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("read %q", got)
	}
	if fs.Crashed() {
		t.Error("no-fault filesystem reports crashed")
	}
}

func TestTornWritePersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	fs := NewInject(OS{}, Config{WriteBudget: 3, FailSyncAfter: -1})
	path := filepath.Join(dir, "f")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("hello"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v", err)
	}
	if n != 3 {
		t.Fatalf("torn write persisted %d bytes, want 3", n)
	}
	f.Close()
	if !fs.Crashed() {
		t.Error("not crashed after budget exhausted")
	}
	// Every later mutation fails.
	if _, err := fs.OpenFile(filepath.Join(dir, "g"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, ErrInjected) {
		t.Errorf("post-crash create err = %v", err)
	}
	if err := fs.Rename(path, path+"2"); !errors.Is(err, ErrInjected) {
		t.Errorf("post-crash rename err = %v", err)
	}
	// The on-disk state is the persisted prefix.
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hel" {
		t.Errorf("on disk after tear: %q", got)
	}
}

func TestWriteBudgetZeroTearsImmediately(t *testing.T) {
	dir := t.TempDir()
	fs := NewInject(OS{}, Config{WriteBudget: 0, FailSyncAfter: -1})
	f, err := fs.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("x"))
	if n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = (%d, %v), want (0, ErrInjected)", n, err)
	}
}

func TestFailSyncAfter(t *testing.T) {
	dir := t.TempDir()
	fs := NewInject(OS{}, Config{WriteBudget: -1, FailSyncAfter: 1})
	f, err := fs.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync err = %v", err)
	}
	if !fs.Crashed() {
		t.Error("not crashed after sync failure")
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("post-crash write err = %v", err)
	}
}

func TestBitFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data")
	if err := os.WriteFile(path, []byte("abcdef"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := noFaults()
	cfg.Flips = []BitFlip{{Name: "data", Offset: 2, Mask: 0x01}}
	fs := NewInject(OS{}, cfg)
	got, err := ReadFile(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abbdef" {
		t.Errorf("flipped read = %q, want abbdef", got)
	}
	// ReadAt sees the same corruption when its window covers the offset.
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 3)
	if _, err := f.ReadAt(buf, 1); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "bbd" {
		t.Errorf("flipped ReadAt = %q, want bbd", buf)
	}
	// The file on disk is untouched: the flip is read-time only.
	raw, _ := os.ReadFile(path)
	if string(raw) != "abcdef" {
		t.Errorf("disk mutated: %q", raw)
	}
}

func TestShortReads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data")
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := noFaults()
	cfg.MaxReadChunk = 7
	fs := NewInject(OS{}, cfg)
	got, err := ReadFile(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("short-read loop returned %d bytes, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], payload[i])
		}
	}
}

func TestWriteAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	fs := NewInject(OS{}, noFaults())
	if err := WriteAtomic(fs, path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteAtomic(fs, path, func(w io.Writer) error {
		_, err := w.Write([]byte("v2"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Errorf("content = %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temporary file left behind: %v", err)
	}
}

func TestWriteAtomicTornLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := NewInject(OS{}, Config{WriteBudget: 2, FailSyncAfter: -1})
	err := WriteAtomic(fs, path, func(w io.Writer) error {
		_, err := w.Write([]byte("new-content"))
		return err
	})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn atomic write err = %v", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "old" {
		t.Errorf("target mutated by failed atomic write: %q", got)
	}
}
