package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"strgindex/internal/feed"
	"strgindex/internal/query"
	"strgindex/internal/video"
)

// Feed endpoints (mounted when Options.Feeds is set):
//
//	POST   /v1/feeds/{id}/frames        NDJSON frame batch -> append result
//	POST   /v1/feeds/{id}/flush         force-commit the open epoch
//	GET    /v1/feeds/{id}               feed state probe
//	GET    /v1/feeds                    list feeds
//	POST   /v1/subscriptions            DSL document -> standing query
//	GET    /v1/subscriptions            list subscriptions
//	GET    /v1/subscriptions/{id}       one subscription's summary
//	DELETE /v1/subscriptions/{id}       unregister
//	GET    /v1/subscriptions/{id}/events  Server-Sent Events stream
//
// The frames body is newline-delimited JSON: an optional first object
// {"meta": {"width": W, "height": H, "fps": F}} fixing the feed's
// geometry (required on the request that creates the feed), then one
// video.Frame object per line. Frames before the feed's cursor are
// idempotent duplicates; a frame beyond it rejects the batch with code
// "frame_order" and the expected index, so a reconnecting client
// resynchronizes from the next_frame cursor it last acked.
//
// The event stream replays buffered events after the client's cursor —
// "Last-Event-ID" header or ?after=N — then follows the live feed. Each
// event carries an id: line with the subscription's monotone sequence
// number. A cursor that has fallen out of the bounded ring first gets an
// un-id'd "gap" event {"missed_from": N, "resume": M} and then the
// retained window; slow consumers lose old events, never ingest
// throughput.

// sseHeartbeat is how often an idle event stream emits a comment line so
// intermediaries do not reap the connection.
const sseHeartbeat = 15 * time.Second

// feedLine is one NDJSON value in a frames body: either the meta header
// or a frame (the embedded Frame's fields; no collision with "meta").
type feedLine struct {
	Meta *feed.Meta `json:"meta"`
	video.Frame
}

// feedOrNotFound resolves a live feed by path ID, writing the 404
// envelope when it does not exist.
func (s *Server) feedOrNotFound(w http.ResponseWriter, r *http.Request) (*feed.Feed, bool) {
	id := r.PathValue("id")
	f, ok := s.opts.Feeds.Feed(id)
	if !ok {
		writeError(w, r, http.StatusNotFound, CodeNotFound, "no such feed: %s", id)
	}
	return f, ok
}

// handleFeedFrames is POST /v1/feeds/{id}/frames.
func (s *Server) handleFeedFrames(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !feed.ValidID(id) {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "invalid feed ID %q", id)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxIngestBodyBytes)
	dec := json.NewDecoder(r.Body)

	var meta *feed.Meta
	var frames []video.Frame
	for i := 0; ; i++ {
		var line feedLine
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				writeError(w, r, http.StatusRequestEntityTooLarge, CodeTooLarge,
					"request body exceeds %d bytes", mbe.Limit)
			} else {
				writeError(w, r, http.StatusBadRequest, CodeBadRequest, "line %d: %v", i+1, err)
			}
			return
		}
		if line.Meta != nil {
			if i != 0 {
				writeError(w, r, http.StatusBadRequest, CodeBadRequest,
					"meta must be the first line, got it at line %d", i+1)
				return
			}
			meta = line.Meta
			continue
		}
		frames = append(frames, line.Frame)
	}

	var f *feed.Feed
	if meta != nil {
		var err error
		if f, err = s.opts.Feeds.Open(id, *meta); err != nil {
			writeError(w, r, http.StatusConflict, CodeBadRequest, "%v", err)
			return
		}
	} else {
		var ok bool
		if f, ok = s.opts.Feeds.Feed(id); !ok {
			writeError(w, r, http.StatusNotFound, CodeNotFound,
				"no such feed: %s (include a meta line to create it)", id)
			return
		}
	}

	res, err := f.Append(frames)
	if err != nil {
		var foe *video.FrameOrderError
		switch {
		case errors.As(err, &foe):
			writeError(w, r, http.StatusConflict, CodeFrameOrder,
				"frame %d out of order; feed expects index %d", foe.Index, foe.Want)
		case res.Accepted > 0:
			// The frames are journaled (the client's cursor advanced);
			// only the epoch commit failed, and the next append or flush
			// retries it. Answer the durable result, not an error that
			// would make the client re-send what it cannot lose.
			s.log.Warn("feed epoch commit deferred",
				"feed", id, "err", err)
			writeJSON(w, http.StatusOK, res)
		default:
			writeError(w, r, http.StatusUnprocessableEntity, CodeBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleFeedFlush is POST /v1/feeds/{id}/flush: commit the open epoch
// regardless of the size thresholds.
func (s *Server) handleFeedFlush(w http.ResponseWriter, r *http.Request) {
	f, ok := s.feedOrNotFound(w, r)
	if !ok {
		return
	}
	if err := f.Flush(); err != nil {
		writeError(w, r, http.StatusInternalServerError, CodeInternal, "flush: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, f.State())
}

// handleFeedState is GET /v1/feeds/{id}.
func (s *Server) handleFeedState(w http.ResponseWriter, r *http.Request) {
	f, ok := s.feedOrNotFound(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, f.State())
}

// handleFeedList is GET /v1/feeds.
func (s *Server) handleFeedList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"feeds": s.opts.Feeds.Feeds()})
}

// handleSubscribe is POST /v1/subscriptions: the body is the same DSL
// document POST /v1/query takes; the response is the registered
// subscription's summary (its seeded events already buffered).
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, queryBodyLimit)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, r, http.StatusRequestEntityTooLarge, CodeTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
		} else {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest, "reading body: %v", err)
		}
		return
	}
	q, err := query.Parse(body)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	sub, err := s.opts.Feeds.Engine().Register(q)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, sub.Info())
}

// handleSubscriptionList is GET /v1/subscriptions.
func (s *Server) handleSubscriptionList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"subscriptions": s.opts.Feeds.Engine().Subs()})
}

// subOrNotFound resolves a live subscription by path ID.
func (s *Server) subOrNotFound(w http.ResponseWriter, r *http.Request) (*feed.Subscription, bool) {
	id := r.PathValue("id")
	sub, ok := s.opts.Feeds.Engine().Get(id)
	if !ok {
		writeError(w, r, http.StatusNotFound, CodeNotFound, "no such subscription: %s", id)
	}
	return sub, ok
}

// handleSubscriptionGet is GET /v1/subscriptions/{id}.
func (s *Server) handleSubscriptionGet(w http.ResponseWriter, r *http.Request) {
	sub, ok := s.subOrNotFound(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sub.Info())
}

// handleUnsubscribe is DELETE /v1/subscriptions/{id}.
func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.opts.Feeds.Engine().Unregister(id) {
		writeError(w, r, http.StatusNotFound, CodeNotFound, "no such subscription: %s", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "unsubscribed"})
}

// sseCursor extracts the client's resume position: the standard
// Last-Event-ID reconnect header, or an explicit ?after=N.
func sseCursor(r *http.Request) (uint64, error) {
	v := r.Header.Get("Last-Event-ID")
	if q := r.URL.Query().Get("after"); q != "" {
		v = q
	}
	if v == "" {
		return 0, nil
	}
	return strconv.ParseUint(v, 10, 64)
}

// handleSubscriptionEvents is GET /v1/subscriptions/{id}/events: the
// Server-Sent Events stream. It replays buffered events after the
// cursor, then follows live appends; ?once=1 drains the buffer and
// returns instead of following (scripts, tests). The stream ends when
// the client disconnects or the subscription is unregistered.
func (s *Server) handleSubscriptionEvents(w http.ResponseWriter, r *http.Request) {
	sub, ok := s.subOrNotFound(w, r)
	if !ok {
		return
	}
	cursor, err := sseCursor(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "bad event cursor: %v", err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, http.StatusInternalServerError, CodeInternal,
			"response writer does not support streaming")
		return
	}
	once := r.URL.Query().Get("once") != ""

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		// Arm the wakeup before scanning: an append between the scan and
		// the select still fires the armed channel, so no event waits for
		// the heartbeat.
		wake := sub.Wait()
		evs, gapped, missedFrom := sub.EventsSince(cursor)
		if gapped {
			// No id: line — a reconnect must not resume from the gap
			// marker itself.
			resume := sub.LastSeq()
			if len(evs) > 0 {
				resume = evs[0].Seq - 1
			}
			fmt.Fprintf(w, "event: gap\ndata: {\"missed_from\":%d,\"resume\":%d}\n\n", missedFrom, resume)
			cursor = resume
		}
		for i := range evs {
			data, err := json.Marshal(&evs[i])
			if err != nil {
				s.log.Error("encoding event", "subscription", sub.ID(), "err", err)
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", evs[i].Seq, evs[i].Type, data)
			cursor = evs[i].Seq
		}
		if len(evs) > 0 || gapped {
			flusher.Flush()
		}
		if once {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-sub.Done():
			fmt.Fprintf(w, "event: closed\ndata: {}\n\n")
			flusher.Flush()
			return
		case <-wake:
		case <-heartbeat.C:
			fmt.Fprintf(w, ": ping\n\n")
			flusher.Flush()
		}
	}
}
