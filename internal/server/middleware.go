package server

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"strgindex/internal/obs"
)

// statusClientClosed is the nginx-convention status recorded for requests
// whose client disconnected before a response was written. It is never
// sent on the wire (there is no one left to read it); it exists so the
// request metric and log line distinguish abandonment from failure.
const statusClientClosed = 499

// statusWriter records the status code and byte count a handler produced.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// status returns the effective status: what the handler wrote, or 200 if
// it wrote a body without an explicit header, or 0 if nothing was written.
func (w *statusWriter) status() int { return w.code }

// Flush forwards to the underlying writer so streaming handlers (the SSE
// event stream) can push each event through the middleware wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// routeLabel buckets a request path into the finite endpoint set so the
// per-endpoint metrics keep bounded cardinality no matter what paths are
// probed.
func routeLabel(path string) string {
	switch path {
	case "/v1/segments", "/v1/query/knn", "/v1/query/range", "/v1/query/select",
		"/v1/stats", "/metrics", "/healthz", "/readyz":
		return path
	}
	// Feed and subscription paths carry client-chosen IDs; bucket them by
	// shape. The frames bucket is its own label so the feed-ingest latency
	// histogram is directly assertable (a stalled event consumer must not
	// move it).
	switch {
	case strings.HasPrefix(path, "/v1/feeds"):
		if strings.HasSuffix(path, "/frames") {
			return "/v1/feeds/frames"
		}
		if strings.HasSuffix(path, "/flush") {
			return "/v1/feeds/flush"
		}
		return "/v1/feeds"
	case strings.HasPrefix(path, "/v1/subscriptions"):
		if strings.HasSuffix(path, "/events") {
			return "/v1/subscriptions/events"
		}
		return "/v1/subscriptions"
	}
	return "other"
}

// middleware wraps the mux with the observability layer: request-ID
// assignment (honoring an incoming X-Request-ID), in-flight gauge, panic
// recovery into the JSON error envelope, per-endpoint latency histograms
// and status-labeled request counters, and one structured log line per
// request carrying the request ID.
func (s *Server) middleware(next http.Handler) http.Handler {
	inflight := s.reg.Gauge("strg_http_inflight", "requests currently being served", nil)
	panics := s.reg.Counter("strg_http_panics_total", "handler panics recovered into 500 responses", nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
		}
		r = r.WithContext(obs.WithRequestID(r.Context(), id))
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		inflight.Inc()
		defer func() {
			if rec := recover(); rec != nil {
				panics.Inc()
				s.log.Error("handler panic",
					"request_id", id,
					"method", r.Method,
					"path", r.URL.Path,
					"panic", fmt.Sprint(rec),
					"stack", string(debug.Stack()),
				)
				if sw.status() == 0 {
					writeError(sw, r, http.StatusInternalServerError, CodeInternal, "internal server error")
				}
			}
			inflight.Dec()
			status := sw.status()
			if status == 0 {
				// Nothing written: the client went away mid-request.
				status = statusClientClosed
			}
			path := routeLabel(r.URL.Path)
			dur := time.Since(start)
			s.reg.Counter("strg_http_requests_total",
				"HTTP requests served, by endpoint and status",
				obs.Labels{"path": path, "status": strconv.Itoa(status)}).Inc()
			s.reg.Histogram("strg_http_request_seconds",
				"HTTP request latency in seconds, by endpoint",
				obs.Labels{"path": path}, nil).Observe(dur.Seconds())
			s.log.Info("request",
				"request_id", id,
				"method", r.Method,
				"path", r.URL.Path,
				"status", status,
				"duration_ms", float64(dur.Nanoseconds())/1e6,
				"bytes", sw.bytes,
			)
		}()
		next.ServeHTTP(sw, r)
	})
}
