package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"strgindex/internal/core"
)

func decodeError(t *testing.T, body []byte) errorEnvelope {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("decoding error envelope %s: %v", body, err)
	}
	return env
}

// TestAdmissionSheds fills the single in-flight slot with a request whose
// body never arrives, then proves the next API request is shed with 429 +
// Retry-After while the probe endpoints keep answering.
func TestAdmissionSheds(t *testing.T) {
	opts := quietOptions()
	opts.MaxInFlight = 1
	opts.QueueTimeout = 20 * time.Millisecond
	s := NewWith(core.DefaultConfig(), opts)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Occupy the slot: the ingest handler blocks reading this body.
	pr, pw := io.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequest("POST", ts.URL+"/v1/segments", pr)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Wait until the blocker actually holds the slot.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			if env := decodeError(t, body); env.Error.Code != CodeOverloaded {
				t.Errorf("shed code = %q, want %q", env.Error.Code, CodeOverloaded)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never saturated")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Probes and metrics bypass admission even at capacity.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s at capacity: status %d, want 200", path, resp.StatusCode)
		}
	}

	// Release the slot; the API serves again.
	pw.CloseWithError(io.ErrUnexpectedEOF)
	wg.Wait()
	deadline = time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("API still shedding after slot release: %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if got := s.Metrics().Counter("strg_http_shed_total", "", nil).Value(); got == 0 {
		t.Error("strg_http_shed_total not incremented")
	}
}

// TestAdmissionQueueAdmits proves a queued request is admitted (not shed)
// when a slot frees within the queue timeout.
func TestAdmissionQueueAdmits(t *testing.T) {
	opts := quietOptions()
	opts.MaxInFlight = 1
	opts.QueueTimeout = 2 * time.Second
	s := NewWith(core.DefaultConfig(), opts)
	ts := httptest.NewServer(s)
	defer ts.Close()

	pr, pw := io.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequest("POST", ts.URL+"/v1/segments", pr)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Give the blocker time to take the slot, free it shortly after.
	time.Sleep(50 * time.Millisecond)
	go func() {
		time.Sleep(100 * time.Millisecond)
		pw.CloseWithError(io.ErrUnexpectedEOF)
	}()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("queued request: status %d, want 200 after slot freed", resp.StatusCode)
	}
	wg.Wait()
}

// TestRequestTimeout proves the server-side deadline turns an
// over-deadline query into 504 with the timeout error code.
func TestRequestTimeout(t *testing.T) {
	opts := quietOptions()
	opts.RequestTimeout = time.Nanosecond
	s := NewWith(core.DefaultConfig(), opts)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// The deadline does not apply to ingest durability, so seeding data
	// works even with a nanosecond budget; the query path then has real
	// candidates and observes its expired context.
	if _, err := s.DB().IngestSegment("cam0", testSegment(t, "walker", 120, 7)); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL+"/v1/query/knn", map[string]any{
		"trajectory": [][2]float64{{10, 10}, {20, 20}}, "k": 3,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	if env := decodeError(t, body); env.Error.Code != CodeTimeout {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeTimeout)
	}
}

// TestReadyzLifecycle covers the liveness/readiness split: /healthz is
// always 200 while the process lives; /readyz follows SetReady.
func TestReadyzLifecycle(t *testing.T) {
	opts := quietOptions()
	opts.StartUnready = true
	s := NewWith(core.DefaultConfig(), opts)
	ts := httptest.NewServer(s)
	defer ts.Close()

	check := func(path string, want int) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d (%s)", path, resp.StatusCode, want, body)
		}
	}
	check("/healthz", http.StatusOK)
	check("/readyz", http.StatusServiceUnavailable)
	if s.Ready() {
		t.Error("Ready() true before SetReady")
	}
	s.SetReady(true)
	check("/readyz", http.StatusOK)
	check("/healthz", http.StatusOK)
	// Shutdown drain: readiness drops, liveness holds.
	s.SetReady(false)
	check("/readyz", http.StatusServiceUnavailable)
	check("/healthz", http.StatusOK)
}

// TestReadyByDefault: a server without StartUnready serves immediately.
func TestReadyByDefault(t *testing.T) {
	s := NewWith(core.DefaultConfig(), quietOptions())
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz on a default server: %d, want 200", resp.StatusCode)
	}
}
