package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"strgindex/internal/core"
	"strgindex/internal/feed"
	"strgindex/internal/obs"
	"strgindex/internal/video"
)

// newFeedServer is a server with the live-feed surface mounted over a
// fresh in-memory database. fopts.Dir/DB/STRG are filled in.
func newFeedServer(t *testing.T, fopts feed.Options) (*Server, *httptest.Server, *feed.Service) {
	t.Helper()
	cfg := core.DefaultConfig()
	db := core.OpenShared(cfg)
	fopts.Dir = t.TempDir()
	fopts.DB = db
	fopts.STRG = &cfg.STRG
	svc, err := feed.Open(fopts)
	if err != nil {
		t.Fatal(err)
	}
	opts := quietOptions()
	opts.Feeds = svc
	s := NewShared(db, opts)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	t.Cleanup(func() { svc.Close() })
	return s, ts, svc
}

// liveFrames generates a contiguous synthetic camera feed (a lab stream
// flattened to one frame sequence) plus its geometry.
func liveFrames(t *testing.T, nObjects int, seed int64) ([]video.Frame, feed.Meta) {
	t.Helper()
	p := video.StreamProfile{
		Name: "Mini", Kind: video.KindLab,
		NumObjects: nObjects, SegmentFrames: 16, ObjectsPerSegment: 2,
	}
	s, err := video.GenerateStream(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	first := s.Segments[0]
	meta := feed.Meta{Width: first.Width, Height: first.Height, FPS: first.FPS}
	var frames []video.Frame
	for _, seg := range s.Segments {
		for _, f := range seg.Frames {
			f.Index = len(frames)
			frames = append(frames, f)
		}
	}
	return frames, meta
}

// ndjson renders the frames-endpoint body: an optional meta line followed
// by one frame per line.
func ndjson(t *testing.T, meta *feed.Meta, frames []video.Frame) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if meta != nil {
		if err := enc.Encode(map[string]any{"meta": meta}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range frames {
		if err := enc.Encode(&frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	return &buf
}

// postFrames sends one NDJSON batch and decodes the append result on 200.
func postFrames(t *testing.T, ts *httptest.Server, id string, meta *feed.Meta, frames []video.Frame) (int, feed.AppendResult, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/feeds/"+id+"/frames", "application/x-ndjson", ndjson(t, meta, frames))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var res feed.AppendResult
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("append result %s: %v", body, err)
		}
	}
	return resp.StatusCode, res, body
}

// pushAll streams the whole corpus in fixed batches, flushes, and waits
// for the engine to drain.
func pushAll(t *testing.T, ts *httptest.Server, svc *feed.Service, id string, frames []video.Frame, batch int) {
	t.Helper()
	for at := 0; at < len(frames); at += batch {
		end := min(at+batch, len(frames))
		if code, _, body := postFrames(t, ts, id, nil, frames[at:end]); code != http.StatusOK {
			t.Fatalf("batch at %d: status %d: %s", at, code, body)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/feeds/"+id+"/flush", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush status %d", resp.StatusCode)
	}
	svc.Engine().Quiesce()
}

// subscribe registers a standing query over HTTP and returns its summary.
func subscribe(t *testing.T, ts *httptest.Server, doc string) feed.SubInfo {
	t.Helper()
	resp, body := post(t, ts.URL+"/v1/subscriptions", json.RawMessage(doc))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe status %d: %s", resp.StatusCode, body)
	}
	var info feed.SubInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" {
		t.Fatalf("subscription without ID: %s", body)
	}
	return info
}

func subInfo(t *testing.T, ts *httptest.Server, id string) feed.SubInfo {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/subscriptions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info feed.SubInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	id    string
	event string
	data  string
}

// parseSSE reads events off an SSE stream into ch until the stream ends.
func parseSSE(r io.Reader, ch chan<- sseEvent) {
	defer close(ch)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var ev sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.event != "" || ev.data != "" || ev.id != "" {
				ch <- ev
			}
			ev = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			ev.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			ev.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// drainOnce fetches the buffered window with ?once=1 plus the given extra
// query/header cursor and returns the parsed events.
func drainOnce(t *testing.T, ts *httptest.Server, id, extraQuery, lastEventID string) []sseEvent {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/subscriptions/"+id+"/events?once=1"+extraQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("events status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	ch := make(chan sseEvent, 4096)
	parseSSE(resp.Body, ch)
	var evs []sseEvent
	for ev := range ch {
		evs = append(evs, ev)
	}
	return evs
}

// TestFeedHTTPLifecycle drives a feed end to end over the wire: creation
// with a meta line, batched appends with an idempotent duplicate re-send,
// state and listing probes, and the error surface (missing meta, invalid
// ID, geometry conflict, out-of-order batch with the frame_order code).
func TestFeedHTTPLifecycle(t *testing.T) {
	_, ts, svc := newFeedServer(t, feed.Options{MinEpochFrames: 12, MaxEpochFrames: 64})
	frames, meta := liveFrames(t, 4, 11)

	// Appending to a nonexistent feed without a meta line is a 404.
	if code, _, body := postFrames(t, ts, "cam", nil, frames[:4]); code != http.StatusNotFound {
		t.Fatalf("append without meta: status %d: %s", code, body)
	}
	// An invalid ID never creates a directory.
	if code, _, _ := postFrames(t, ts, strings.Repeat("a", 65), &meta, nil); code != http.StatusBadRequest {
		t.Fatal("invalid feed ID accepted")
	}
	// Creation: meta line only, no frames yet.
	if code, res, body := postFrames(t, ts, "cam", &meta, nil); code != http.StatusOK || res.NextFrame != 0 {
		t.Fatalf("create: status %d res %+v: %s", code, res, body)
	}
	// Geometry is fixed at creation.
	bad := meta
	bad.Width++
	if code, _, body := postFrames(t, ts, "cam", &bad, nil); code != http.StatusConflict {
		t.Fatalf("geometry conflict: status %d: %s", code, body)
	}

	code, res, body := postFrames(t, ts, "cam", nil, frames[:8])
	if code != http.StatusOK || res.Accepted != 8 || res.NextFrame != 8 {
		t.Fatalf("first batch: status %d res %+v: %s", code, res, body)
	}
	// A client retrying after a lost ack is idempotent.
	code, res, _ = postFrames(t, ts, "cam", nil, frames[:8])
	if code != http.StatusOK || res.Accepted != 0 || res.Duplicates != 8 || res.NextFrame != 8 {
		t.Fatalf("duplicate re-send: status %d res %+v", code, res)
	}
	// A gap rejects the whole batch with its own code and the expected
	// index, so the client can resynchronize.
	code, _, body = postFrames(t, ts, "cam", nil, frames[16:20])
	if code != http.StatusConflict {
		t.Fatalf("gapped batch: status %d: %s", code, body)
	}
	env := decodeError(t, body)
	if env.Error.Code != CodeFrameOrder || !strings.Contains(env.Error.Message, "expects index 8") {
		t.Fatalf("gapped batch envelope = %+v", env)
	}

	pushAll(t, ts, svc, "cam", frames[8:], 8)
	f, ok := svc.Feed("cam")
	if !ok {
		t.Fatal("feed lost")
	}
	if st := f.State(); st.NextFrame != len(frames) || st.Epoch == 0 {
		t.Fatalf("state = %+v", st)
	}

	resp, err := http.Get(ts.URL + "/v1/feeds/cam")
	if err != nil {
		t.Fatal(err)
	}
	var st feed.State
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ID != "cam" || st.NextFrame != len(frames) {
		t.Fatalf("GET state = %+v", st)
	}
	resp, err = http.Get(ts.URL + "/v1/feeds")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Feeds []feed.State `json:"feeds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Feeds) != 1 || list.Feeds[0].ID != "cam" {
		t.Fatalf("feed list = %+v", list)
	}
}

// TestFeedSSEExactlyOnceInOrder opens one live event stream and proves
// push delivery: every event the subscription produced arrives exactly
// once, in order, with dense sequence numbers starting at 1.
func TestFeedSSEExactlyOnceInOrder(t *testing.T) {
	_, ts, svc := newFeedServer(t, feed.Options{MinEpochFrames: 12, MaxEpochFrames: 48})
	frames, meta := liveFrames(t, 6, 9)
	if code, _, body := postFrames(t, ts, "cam", &meta, nil); code != http.StatusOK {
		t.Fatalf("create: %d %s", code, body)
	}
	info := subscribe(t, ts, `{"where": {"longer_than": 1}}`)

	resp, err := http.Get(ts.URL + "/v1/subscriptions/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	ch := make(chan sseEvent, 4096)
	go parseSSE(resp.Body, ch)

	pushAll(t, ts, svc, "cam", frames, 8)

	want := subInfo(t, ts, info.ID).LastSeq
	if want == 0 {
		t.Fatal("no events produced; the corpus should yield OGs")
	}
	var got []sseEvent
	deadline := time.After(30 * time.Second)
	for uint64(len(got)) < want {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("stream ended after %d/%d events", len(got), want)
			}
			got = append(got, ev)
		case <-deadline:
			t.Fatalf("timed out after %d/%d events", len(got), want)
		}
	}
	for i, ev := range got {
		if ev.id != strconv.Itoa(i+1) {
			t.Fatalf("event %d has id %q, want dense ids from 1: %+v", i, ev.id, got)
		}
		if ev.event != "match" {
			t.Fatalf("event %d type %q, want match", i, ev.event)
		}
		var payload feed.Event
		if err := json.Unmarshal([]byte(ev.data), &payload); err != nil {
			t.Fatalf("event %d data %q: %v", i, ev.data, err)
		}
		if payload.Seq != uint64(i+1) || payload.Stream != "cam" || payload.Clip == "" {
			t.Fatalf("event %d payload = %+v", i, payload)
		}
	}
}

// TestFeedSSEResumeAndGap proves the reconnect contract over a tiny ring:
// a cursor inside the retained window resumes exactly-once; a cursor that
// fell out gets one un-id'd gap event naming the missed range, then the
// window.
func TestFeedSSEResumeAndGap(t *testing.T) {
	const ringSize = 4
	_, ts, svc := newFeedServer(t, feed.Options{MinEpochFrames: 12, MaxEpochFrames: 48, RingSize: ringSize})
	frames, meta := liveFrames(t, 6, 21)
	if code, _, body := postFrames(t, ts, "cam", &meta, nil); code != http.StatusOK {
		t.Fatalf("create: %d %s", code, body)
	}
	info := subscribe(t, ts, `{"where": {"longer_than": 1}}`)
	pushAll(t, ts, svc, "cam", frames, 8)

	last := subInfo(t, ts, info.ID).LastSeq
	if last <= ringSize {
		t.Fatalf("only %d events; need more than the ring's %d", last, ringSize)
	}

	// Cold read from 0: gap first, then the retained window.
	evs := drainOnce(t, ts, info.ID, "", "")
	if len(evs) != ringSize+1 {
		t.Fatalf("got %d events, want gap + %d: %+v", len(evs), ringSize, evs)
	}
	if evs[0].event != "gap" || evs[0].id != "" {
		t.Fatalf("first event = %+v, want un-id'd gap", evs[0])
	}
	var gap struct {
		MissedFrom uint64 `json:"missed_from"`
		Resume     uint64 `json:"resume"`
	}
	if err := json.Unmarshal([]byte(evs[0].data), &gap); err != nil {
		t.Fatal(err)
	}
	if gap.MissedFrom != 1 || gap.Resume != last-ringSize {
		t.Fatalf("gap = %+v, want missed_from 1 resume %d", gap, last-ringSize)
	}
	for i, ev := range evs[1:] {
		if want := last - uint64(ringSize) + uint64(i) + 1; ev.id != strconv.FormatUint(want, 10) {
			t.Fatalf("window event %d id %q, want %d", i, ev.id, want)
		}
	}

	// Reconnect from inside the window via Last-Event-ID: no gap, only
	// the events after the cursor.
	evs = drainOnce(t, ts, info.ID, "", strconv.FormatUint(last-1, 10))
	if len(evs) != 1 || evs[0].event == "gap" || evs[0].id != strconv.FormatUint(last, 10) {
		t.Fatalf("Last-Event-ID resume = %+v, want exactly seq %d", evs, last)
	}
	// ?after= behaves the same; a caught-up cursor gets nothing.
	if evs := drainOnce(t, ts, info.ID, "&after="+strconv.FormatUint(last, 10), ""); len(evs) != 0 {
		t.Fatalf("caught-up cursor replayed %+v", evs)
	}
	// A malformed cursor is a 400, not a stream.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/subscriptions/"+info.ID+"/events?after=x", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor status %d", resp.StatusCode)
	}
}

// TestFeedSSEStalledConsumerNeverDelaysIngest opens an event stream and
// never reads it, then pushes the whole corpus. The bounded ring must
// absorb the stall — every append completes, the feed-ingest latency
// histogram shows no outliers, and the subscription reports dropped
// events instead of exerting backpressure.
func TestFeedSSEStalledConsumerNeverDelaysIngest(t *testing.T) {
	s, ts, svc := newFeedServer(t, feed.Options{MinEpochFrames: 12, MaxEpochFrames: 48, RingSize: 4})
	frames, meta := liveFrames(t, 6, 33)
	if code, _, body := postFrames(t, ts, "cam", &meta, nil); code != http.StatusOK {
		t.Fatalf("create: %d %s", code, body)
	}
	info := subscribe(t, ts, `{"where": {"longer_than": 1}}`)

	// The stalled consumer: connected, never reading.
	resp, err := http.Get(ts.URL + "/v1/subscriptions/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	hist := s.Metrics().Histogram("strg_http_request_seconds", "", obs.Labels{"path": "/v1/feeds/frames"}, nil)
	before := hist.Count()
	const batch = 8
	posts := int64(0)
	for at := 0; at < len(frames); at += batch {
		end := min(at+batch, len(frames))
		if code, _, body := postFrames(t, ts, "cam", nil, frames[at:end]); code != http.StatusOK {
			t.Fatalf("batch at %d stalled or failed: status %d: %s", at, code, body)
		}
		posts++
	}
	svc.Engine().Quiesce()

	if got := hist.Count() - before; got != posts {
		t.Fatalf("latency histogram saw %d appends, want %d", got, posts)
	}
	if mean := hist.Sum() / float64(hist.Count()); mean > 2.0 {
		t.Fatalf("mean append latency %.3fs with a stalled consumer; ingest is being delayed", mean)
	}
	after := subInfo(t, ts, info.ID)
	if after.LastSeq <= 4 {
		t.Fatalf("only %d events; the corpus should overflow the ring", after.LastSeq)
	}
	if after.Dropped == 0 {
		t.Fatal("ring dropped nothing; a stalled consumer must shed events, not block ingest")
	}
}

// TestSubscriptionHTTPLifecycle covers the non-streaming subscription
// surface: rejection of invalid documents, listing, per-ID lookup, and
// unregistration closing the stream.
func TestSubscriptionHTTPLifecycle(t *testing.T) {
	_, ts, _ := newFeedServer(t, feed.Options{})

	for _, doc := range []string{
		`{}`,
		`not json`,
		`{"similar": {"trajectory": [[1, 1]], "k": 2, "mode": "approx"}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/subscriptions", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("doc %s: status %d: %s", doc, resp.StatusCode, body)
		}
	}

	knn := subscribe(t, ts, `{"similar": {"trajectory": [[20, 120], [280, 120]], "k": 2}}`)
	if knn.Kind != "knn" || knn.K != 2 {
		t.Fatalf("knn info = %+v", knn)
	}
	rng := subscribe(t, ts, `{"similar": {"trajectory": [[20, 120]], "radius": 50}}`)
	if rng.Kind != "range" || rng.Radius != 50 {
		t.Fatalf("range info = %+v", rng)
	}

	resp, err := http.Get(ts.URL + "/v1/subscriptions")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Subscriptions []feed.SubInfo `json:"subscriptions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Subscriptions) != 2 {
		t.Fatalf("list = %+v", list)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/subscriptions/"+knn.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unsubscribe status %d", resp.StatusCode)
	}
	resp, err = http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double unsubscribe status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/subscriptions/" + knn.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events on deleted subscription: status %d", resp.StatusCode)
	}
}

// TestFeedNDJSONErrors covers the frames decoder's rejection paths.
func TestFeedNDJSONErrors(t *testing.T) {
	_, ts, _ := newFeedServer(t, feed.Options{})
	frames, meta := liveFrames(t, 4, 7)
	if code, _, body := postFrames(t, ts, "cam", &meta, nil); code != http.StatusOK {
		t.Fatalf("create: %d %s", code, body)
	}

	// Garbage mid-stream names the offending line.
	body := ndjson(t, nil, frames[:2])
	body.WriteString("{\"Index\": }\n")
	resp, err := http.Post(ts.URL+"/v1/feeds/cam/frames", "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage line: status %d: %s", resp.StatusCode, raw)
	}
	env := decodeError(t, raw)
	if env.Error.Code != CodeBadRequest || !strings.Contains(env.Error.Message, "line 3") {
		t.Fatalf("garbage line envelope = %+v", env)
	}
	// Nothing before the bad line was journaled: the batch is atomic.
	if code, res, _ := postFrames(t, ts, "cam", nil, nil); code != http.StatusOK || res.NextFrame != 0 {
		t.Fatalf("cursor moved on a rejected batch: %+v", res)
	}

	// A meta line anywhere but first is rejected.
	body = ndjson(t, nil, frames[:1])
	metaLine, _ := json.Marshal(map[string]any{"meta": meta})
	body.Write(append(metaLine, '\n'))
	resp, err = http.Post(ts.URL+"/v1/feeds/cam/frames", "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "first line") {
		t.Fatalf("late meta: status %d: %s", resp.StatusCode, raw)
	}
}

// TestIngestFrameOrderCode is the one-shot ingest half of the frame-order
// contract: a segment whose indices are gapped is rejected up front with
// the frame_order code, before the pipeline sees it.
func TestIngestFrameOrderCode(t *testing.T) {
	_, ts := newTestServer(t)
	seg := testSegment(t, "walker", 120, 1)
	seg.Frames[2].Index = 7
	resp, body := post(t, ts.URL+"/v1/segments", map[string]any{"stream": "cam0", "segment": seg})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	env := decodeError(t, body)
	if env.Error.Code != CodeFrameOrder {
		t.Fatalf("code = %q, want %q (%s)", env.Error.Code, CodeFrameOrder, body)
	}
	if !strings.Contains(env.Error.Message, "position 2") || !strings.Contains(env.Error.Message, "index 7") {
		t.Fatalf("message does not name the violation: %s", env.Error.Message)
	}
}

// TestFeedRoutesMethodNotAllowed proves wildcard feed routes answer 405
// (with Allow) rather than falling through to the 404 catch-all.
func TestFeedRoutesMethodNotAllowed(t *testing.T) {
	_, ts, _ := newFeedServer(t, feed.Options{})
	for path, allow := range map[string]string{
		"/v1/feeds/cam/frames": http.MethodPost,
		"/v1/feeds":            http.MethodGet,
		"/v1/subscriptions":    "GET, POST",
	} {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("PUT %s: status %d, want 405", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != allow {
			t.Errorf("PUT %s: Allow = %q, want %q", path, got, allow)
		}
	}
}
