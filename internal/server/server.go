// Package server exposes a VideoDB over HTTP with a versioned JSON API —
// the deployment surface of the system: one process ingests camera
// segments and serves motion-similarity and predicate queries.
//
//	POST /v1/query             declarative query DSL (see internal/query)
//	POST /v1/segments          {"stream": "...", "segment": {...}}  -> ingest stats
//	POST /v1/query/knn         deprecated alias: {"trajectory": [[x,y],...], "k": 5}
//	POST /v1/query/range       deprecated alias: {"trajectory": [[x,y],...], "radius": 200}
//	POST /v1/query/select      deprecated alias: {"passes_through": {...}, ...}
//	GET  /v1/stats
//	GET  /healthz              liveness probe
//	GET  /metrics              Prometheus text exposition
//
// POST /v1/query is the query surface: one JSON document composing a
// `where` predicate tree with an optional `similar` clause (k-NN or
// range), planned by the cost-based planner (trajectory R-tree probe vs
// scan vs index descent) and answered with the unified envelope
//
//	{"matches": [...], "total": n, "limit": n, "truncated": false,
//	 "stats": {... filter-and-refine accounting, "stages": [...]},
//	 "plan": {"strategy": "rtree", ...}}
//
// where stats carries the search's filter-and-refine accounting
// (candidates evaluated, records pruned by each lower-bound stage, DP
// kernels abandoned, cache hits) plus per-stage candidate counts, and
// plan describes the chosen access path. The three legacy query
// endpoints answer the same envelope, desugar onto the same planner, and
// set "Deprecation: true" plus a successor Link header.
//
// Every error response is the JSON envelope
// {"error": {"code", "message", "request_id"}} with a stable
// machine-readable code (see errors.go); the request ID also appears in
// the X-Request-ID response header and the structured log line for the
// request. Request bodies are size-limited, and query handlers observe
// request-context cancellation: a disconnected client aborts its
// in-flight search instead of burning the worker pool.
//
// All handlers are safe for concurrent use (the server wraps a SharedDB).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"strgindex/internal/core"
	"strgindex/internal/dist"
	"strgindex/internal/feed"
	"strgindex/internal/geom"
	"strgindex/internal/index"
	"strgindex/internal/obs"
	"strgindex/internal/query"
	"strgindex/internal/replica"
	"strgindex/internal/video"
)

// Body-size and response-size defaults; see Options to override.
const (
	// defaultIngestBodyLimit bounds POST /v1/segments bodies (segments
	// carry per-frame region lists and can legitimately run to megabytes).
	defaultIngestBodyLimit = 32 << 20
	// queryBodyLimit bounds every /v1/query/* body; a trajectory or
	// predicate description has no business being this large.
	queryBodyLimit = 1 << 20
	// defaultSelectLimit caps /v1/query/select responses unless the
	// request asks for a different (still bounded) limit.
	defaultSelectLimit = 1000
)

// Options configures the observability surface of a server. The zero
// value is production-ready.
type Options struct {
	// Logger receives one structured line per request plus error and
	// panic reports. Nil means a text handler on stderr.
	Logger *slog.Logger
	// Registry receives the HTTP-layer metrics. Nil means a fresh
	// registry private to this server; GET /metrics renders it followed
	// by the process-global obs.Default (pipeline metrics).
	Registry *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// MaxIngestBodyBytes overrides the POST /v1/segments body limit.
	// Zero means 32 MiB.
	MaxIngestBodyBytes int64
	// SelectLimit overrides the default /v1/query/select response cap.
	// Zero means 1000.
	SelectLimit int
	// MaxInFlight caps concurrently served API requests (probe and
	// metrics endpoints are exempt). Excess requests queue up to
	// QueueTimeout and are then shed with 429 + Retry-After. Zero means
	// no cap.
	MaxInFlight int
	// QueueTimeout bounds how long a request may wait for an in-flight
	// slot. Zero means 1 second when MaxInFlight is set.
	QueueTimeout time.Duration
	// RequestTimeout is the server-side deadline on each API request's
	// context; an expired deadline answers 504. Zero means no deadline.
	RequestTimeout time.Duration
	// StartUnready makes /readyz answer 503 until SetReady(true) — for a
	// process that binds its listener before recovery has finished.
	StartUnready bool
	// ReadyCheck, when set, is consulted by /readyz after the ready flag:
	// a non-nil error answers 503 with the error text. Defaults to
	// Replica.Healthy when Replica is set, so a lagging or diverged
	// replica drops out of rotation automatically.
	ReadyCheck func() error
	// Replication mounts the primary-side replication endpoints
	// (/v1/replication/{register,ack,snapshot,wal,digest,status}) over the
	// given service.
	Replication *replica.Primary
	// Replica marks this server as a read replica: ingest answers 403
	// read_only_replica, /v1/replication/status reports the replica's
	// view, and /readyz fails while the replica lags past its bound.
	Replica *replica.Replica
	// Feeds mounts the live-feed and standing-query endpoints
	// (/v1/feeds/*, /v1/subscriptions/*) over the given service.
	Feeds *feed.Service
}

func (o Options) withDefaults() Options {
	if o.Logger == nil {
		o.Logger = obs.NewLogger()
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.MaxIngestBodyBytes <= 0 {
		o.MaxIngestBodyBytes = defaultIngestBodyLimit
	}
	if o.SelectLimit <= 0 {
		o.SelectLimit = defaultSelectLimit
	}
	if o.MaxInFlight > 0 && o.QueueTimeout <= 0 {
		o.QueueTimeout = time.Second
	}
	if o.ReadyCheck == nil && o.Replica != nil {
		o.ReadyCheck = o.Replica.Healthy
	}
	return o
}

// Server is the HTTP facade over a shared database.
type Server struct {
	db      *core.SharedDB
	mux     *http.ServeMux
	handler http.Handler
	log     *slog.Logger
	reg     *obs.Registry
	opts    Options
	// ready gates /readyz: false while recovery is replaying or shutdown
	// is draining. Liveness (/healthz) is independent of it.
	ready atomic.Bool
}

// New creates a server over an empty database with default options.
func New(cfg core.Config) *Server {
	return NewWith(cfg, Options{})
}

// NewWith creates a server over an empty database.
func NewWith(cfg core.Config, opts Options) *Server {
	return wrap(core.OpenShared(cfg), opts)
}

// NewFromReader creates a server over a database persisted by
// core.VideoDB.Save / SharedDB.Save.
func NewFromReader(r io.Reader, cfg core.Config) (*Server, error) {
	return NewFromReaderWith(r, cfg, Options{})
}

// NewFromReaderWith is NewFromReader with observability options.
func NewFromReaderWith(r io.Reader, cfg core.Config, opts Options) (*Server, error) {
	db, err := core.LoadShared(r, cfg)
	if err != nil {
		return nil, err
	}
	return wrap(db, opts), nil
}

// NewShared creates a server over an existing shared database — e.g. one
// recovered with core.OpenDurable.
func NewShared(db *core.SharedDB, opts Options) *Server {
	return wrap(db, opts)
}

func wrap(db *core.SharedDB, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{db: db, mux: http.NewServeMux(), log: opts.Logger, reg: opts.Registry, opts: opts}
	s.mux.HandleFunc("POST /v1/segments", s.handleIngest)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/query/knn", s.handleKNN)
	s.mux.HandleFunc("POST /v1/query/range", s.handleRange)
	s.mux.HandleFunc("POST /v1/query/select", s.handleSelect)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Method mismatches on known paths envelope as 405 with an Allow
	// header; everything else falls through to the catch-all 404. Both
	// stay JSON: a /v1 client should never see a text/plain error.
	allowed := map[string]string{
		"/v1/segments":     http.MethodPost,
		"/v1/query":        http.MethodPost,
		"/v1/query/knn":    http.MethodPost,
		"/v1/query/range":  http.MethodPost,
		"/v1/query/select": http.MethodPost,
		"/v1/stats":        http.MethodGet,
	}
	if opts.Replication != nil {
		s.mux.HandleFunc("POST /v1/replication/register", s.handleReplRegister)
		s.mux.HandleFunc("POST /v1/replication/ack", s.handleReplAck)
		s.mux.HandleFunc("GET /v1/replication/snapshot", s.handleReplSnapshot)
		s.mux.HandleFunc("GET /v1/replication/wal", s.handleReplWAL)
		s.mux.HandleFunc("GET /v1/replication/digest", s.handleReplDigest)
		allowed["/v1/replication/register"] = http.MethodPost
		allowed["/v1/replication/ack"] = http.MethodPost
		allowed["/v1/replication/snapshot"] = http.MethodGet
		allowed["/v1/replication/wal"] = http.MethodGet
		allowed["/v1/replication/digest"] = http.MethodGet
	}
	if opts.Replication != nil || opts.Replica != nil {
		s.mux.HandleFunc("GET /v1/replication/status", s.handleReplStatus)
		allowed["/v1/replication/status"] = http.MethodGet
	}
	if opts.Feeds != nil {
		s.mux.HandleFunc("POST /v1/feeds/{id}/frames", s.handleFeedFrames)
		s.mux.HandleFunc("POST /v1/feeds/{id}/flush", s.handleFeedFlush)
		s.mux.HandleFunc("GET /v1/feeds/{id}", s.handleFeedState)
		s.mux.HandleFunc("GET /v1/feeds", s.handleFeedList)
		s.mux.HandleFunc("POST /v1/subscriptions", s.handleSubscribe)
		s.mux.HandleFunc("GET /v1/subscriptions", s.handleSubscriptionList)
		s.mux.HandleFunc("GET /v1/subscriptions/{id}", s.handleSubscriptionGet)
		s.mux.HandleFunc("DELETE /v1/subscriptions/{id}", s.handleUnsubscribe)
		s.mux.HandleFunc("GET /v1/subscriptions/{id}/events", s.handleSubscriptionEvents)
		allowed["/v1/feeds/{id}/frames"] = http.MethodPost
		allowed["/v1/feeds/{id}/flush"] = http.MethodPost
		allowed["/v1/feeds/{id}"] = http.MethodGet
		allowed["/v1/feeds"] = http.MethodGet
		allowed["/v1/subscriptions"] = "GET, POST"
		allowed["/v1/subscriptions/{id}"] = "DELETE, GET"
		allowed["/v1/subscriptions/{id}/events"] = http.MethodGet
	}
	for p, allow := range allowed {
		allow := allow
		s.mux.HandleFunc(p, func(w http.ResponseWriter, r *http.Request) {
			s.handleMethodNotAllowed(w, r, allow)
		})
	}
	s.mux.HandleFunc("/", s.handleNotFound)
	if opts.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.ready.Store(!opts.StartUnready)
	s.handler = s.middleware(s.admission(s.mux))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// DB exposes the underlying shared database (tests, embedding).
func (s *Server) DB() *core.SharedDB { return s.db }

// Metrics exposes the server's HTTP metric registry (tests, embedding).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// decode parses a size-limited JSON body, writing the error envelope
// (400 bad_request or 413 too_large) and returning false on failure.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, r, http.StatusRequestEntityTooLarge, CodeTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
		} else {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest, "decoding body: %v", err)
		}
		return false
	}
	return true
}

// queryError reports a failed Ctx query: a server-imposed deadline
// answers 504; client cancellation means the client disconnected (the
// envelope goes nowhere, but the status makes the request metric and log
// line honest); anything else is a pool failure.
func (s *Server) queryError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, core.ErrApproxDisabled) {
		writeError(w, r, http.StatusBadRequest, CodeApproxDisabled,
			"approximate tier is disabled on this server (start it with -approx, or drop \"mode\": \"approx\")")
		return
	}
	if errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == context.DeadlineExceeded {
		s.log.Warn("query deadline exceeded",
			"request_id", obs.RequestIDFrom(r.Context()),
			"path", r.URL.Path, "timeout", s.opts.RequestTimeout)
		writeError(w, r, http.StatusGatewayTimeout, CodeTimeout,
			"query exceeded the %s request deadline", s.opts.RequestTimeout)
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.log.Warn("query canceled",
			"request_id", obs.RequestIDFrom(r.Context()),
			"path", r.URL.Path, "cause", err)
		writeError(w, r, statusClientClosed, CodeInternal, "query canceled: %v", err)
		return
	}
	s.log.Error("query failed",
		"request_id", obs.RequestIDFrom(r.Context()),
		"path", r.URL.Path, "err", err)
	writeError(w, r, http.StatusInternalServerError, CodeInternal, "query failed")
}

// ingestRequest is the POST /v1/segments body.
type ingestRequest struct {
	Stream  string         `json:"stream"`
	Segment *video.Segment `json:"segment"`
}

// matchJSON is one query hit on the wire.
type matchJSON struct {
	Stream   string  `json:"stream"`
	Clip     string  `json:"clip"`
	Label    string  `json:"label,omitempty"`
	OGID     int     `json:"og_id"`
	Distance float64 `json:"distance"`
}

func toMatchJSON(ms []core.Match) []matchJSON {
	out := make([]matchJSON, len(ms))
	for i, m := range ms {
		out[i] = matchJSON{
			Stream:   m.Record.Stream,
			Clip:     m.Record.Clip.String(),
			Label:    m.Record.Label,
			OGID:     m.Record.OGID,
			Distance: m.Distance,
		}
	}
	return out
}

// searchStatsJSON is one search's filter-and-refine accounting on the
// wire (see index.SearchStats for the taxonomy).
type searchStatsJSON struct {
	CandidateLeaves  int `json:"candidate_leaves"`
	ScannedLeaves    int `json:"scanned_leaves"`
	Records          int `json:"records"`
	CacheHits        int `json:"cache_hits"`
	LBQuickPruned    int `json:"lb_quick_pruned"`
	LBEnvelopePruned int `json:"lb_envelope_pruned"`
	DPEvaluated      int `json:"dp_evaluated"`
	DPAbandoned      int `json:"dp_abandoned"`
}

func toStatsJSON(st index.SearchStats) searchStatsJSON {
	return searchStatsJSON{
		CandidateLeaves:  st.CandidateLeaves,
		ScannedLeaves:    st.ScannedLeaves,
		Records:          st.Records,
		CacheHits:        st.CacheHits,
		LBQuickPruned:    st.LBQuickPruned,
		LBEnvelopePruned: st.LBEnvelopePruned,
		DPEvaluated:      st.DPEvaluated,
		DPAbandoned:      st.DPAbandoned,
	}
}

// stageJSON is one executed plan stage on the wire.
type stageJSON struct {
	Name   string `json:"name"`
	In     int    `json:"in"`
	Out    int    `json:"out"`
	Micros int64  `json:"micros"`
}

// queryStatsJSON is the envelope's stats object: the index search's
// filter-and-refine accounting (flat, zero for plans that never touch
// the index) plus the planner's per-stage candidate counts.
type queryStatsJSON struct {
	searchStatsJSON
	Stages []stageJSON `json:"stages,omitempty"`
	Approx *approxJSON `json:"approx,omitempty"`
}

// planJSON describes the access path the cost-based planner chose.
type planJSON struct {
	Strategy       string   `json:"strategy"`
	ProbeSource    string   `json:"probe_source,omitempty"`
	EstSelectivity float64  `json:"est_selectivity,omitempty"`
	EstCandidates  int      `json:"est_candidates,omitempty"`
	CostScan       float64  `json:"cost_scan,omitempty"`
	CostRTree      float64  `json:"cost_rtree,omitempty"`
	NProbe         int      `json:"nprobe,omitempty"`
	CostApprox     float64  `json:"cost_approx,omitempty"`
	Order          []string `json:"order,omitempty"`
}

// approxJSON is the approximate tier's probe accounting (strategy
// "approx" only; the rerank itself reports through the regular search
// stats — its distances are exact).
type approxJSON struct {
	NProbe      int     `json:"nprobe"`
	Lists       int     `json:"lists"`
	Probed      int     `json:"probed"`
	Candidates  int     `json:"candidates"`
	RecallProxy float64 `json:"recall_proxy"`
}

// queryResponse is the unified reply envelope of every /v1/query*
// endpoint: matches capped at limit, the untruncated total, the search
// and per-stage accounting, and the plan that produced it.
type queryResponse struct {
	Matches   []matchJSON    `json:"matches"`
	Total     int            `json:"total"`
	Limit     int            `json:"limit"`
	Truncated bool           `json:"truncated"`
	Stats     queryStatsJSON `json:"stats"`
	Plan      planJSON       `json:"plan"`
}

func (s *Server) toQueryResponse(res *core.QueryResult) queryResponse {
	stages := make([]stageJSON, len(res.Stages))
	for i, st := range res.Stages {
		stages[i] = stageJSON{Name: st.Name, In: st.In, Out: st.Out, Micros: st.Duration.Microseconds()}
	}
	out := queryResponse{
		Matches:   toMatchJSON(res.Matches),
		Total:     res.Total,
		Limit:     res.Limit,
		Truncated: res.Truncated,
		Stats:     queryStatsJSON{searchStatsJSON: toStatsJSON(res.Search), Stages: stages},
		Plan: planJSON{
			Strategy:       string(res.Plan.Strategy),
			ProbeSource:    res.Plan.ProbeSource,
			EstSelectivity: res.Plan.EstSelectivity,
			EstCandidates:  res.Plan.EstCandidates,
			CostScan:       res.Plan.CostScan,
			CostRTree:      res.Plan.CostRTree,
			NProbe:         res.Plan.NProbe,
			CostApprox:     res.Plan.CostApprox,
			Order:          res.Plan.Order,
		},
	}
	if res.Approx != nil {
		out.Stats.Approx = &approxJSON{
			NProbe:      res.Approx.NProbe,
			Lists:       res.Approx.Lists,
			Probed:      res.Approx.Probed,
			Candidates:  res.Approx.Candidates,
			RecallProxy: res.Approx.RecallProxy,
		}
	}
	return out
}

// deprecated marks a legacy endpoint's response: the endpoint keeps
// working (and answers the unified envelope), but /v1/query is its
// successor.
func deprecated(w http.ResponseWriter) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/query>; rel="successor-version"`)
}

// runComposed plans, executes and answers one declarative query. A
// predicate-only query with no explicit limit gets the server's select
// cap, so an unbounded scan cannot return an arbitrarily large payload.
func (s *Server) runComposed(w http.ResponseWriter, r *http.Request, q *query.Query) {
	if q.Limit == 0 && q.Similar == nil {
		q.Limit = s.opts.SelectLimit
	}
	res, err := s.db.QueryComposedCtx(r.Context(), q)
	if err != nil {
		s.queryError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, s.toQueryResponse(res))
}

// handleQuery is POST /v1/query: the declarative DSL endpoint.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, queryBodyLimit)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, r, http.StatusRequestEntityTooLarge, CodeTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
		} else {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest, "reading body: %v", err)
		}
		return
	}
	q, err := query.Parse(body)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	s.runComposed(w, r, q)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if !s.decode(w, r, s.opts.MaxIngestBodyBytes, &req) {
		return
	}
	if req.Stream == "" || req.Segment == nil || len(req.Segment.Frames) == 0 {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest,
			"stream and a non-empty segment are required")
		return
	}
	if err := req.Segment.Validate(); err != nil {
		// A frame-numbering violation gets its own code: a streaming
		// client resynchronizes on it instead of treating the batch as
		// malformed JSON.
		if errors.Is(err, video.ErrFrameOrder) {
			writeError(w, r, http.StatusUnprocessableEntity, CodeFrameOrder, "%v", err)
			return
		}
		writeError(w, r, http.StatusUnprocessableEntity, CodeBadRequest, "%v", err)
		return
	}
	stats, err := s.db.IngestSegment(req.Stream, req.Segment)
	if errors.Is(err, core.ErrReplica) {
		writeError(w, r, http.StatusForbidden, CodeReadOnlyReplica,
			"this server is a read replica; ingest on the primary")
		return
	}
	if err != nil {
		writeError(w, r, http.StatusUnprocessableEntity, CodeBadRequest, "ingest: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

// trajectoryRequest is shared by the knn and range queries.
type trajectoryRequest struct {
	Trajectory [][2]float64 `json:"trajectory"`
	K          int          `json:"k"`
	Exact      bool         `json:"exact"`
	Radius     float64      `json:"radius"`
}

func (t *trajectoryRequest) sequence() (dist.Sequence, error) {
	if len(t.Trajectory) == 0 {
		return nil, fmt.Errorf("empty trajectory")
	}
	seq := make(dist.Sequence, len(t.Trajectory))
	for i, p := range t.Trajectory {
		if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
			return nil, fmt.Errorf("sample %d is NaN", i)
		}
		seq[i] = dist.Vec{p[0], p[1]}
	}
	return seq, nil
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req trajectoryRequest
	if !s.decode(w, r, queryBodyLimit, &req) {
		return
	}
	seq, err := req.sequence()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if req.K <= 0 {
		req.K = 5
	}
	deprecated(w)
	s.runComposed(w, r, &query.Query{
		Similar: &query.SimilarClause{Trajectory: seq, K: req.K, Exact: req.Exact},
	})
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req trajectoryRequest
	if !s.decode(w, r, queryBodyLimit, &req) {
		return
	}
	seq, err := req.sequence()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if req.Radius <= 0 {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "radius must be positive")
		return
	}
	deprecated(w)
	s.runComposed(w, r, &query.Query{
		Similar: &query.SimilarClause{Trajectory: seq, Radius: req.Radius},
	})
}

// selectRequest is a declarative predicate description.
type selectRequest struct {
	PassesThrough *rectJSON `json:"passes_through,omitempty"`
	StartsIn      *rectJSON `json:"starts_in,omitempty"`
	EndsIn        *rectJSON `json:"ends_in,omitempty"`
	// Heading is one of "east", "west", "north", "south".
	Heading    string   `json:"heading,omitempty"`
	HeadingTol float64  `json:"heading_tol,omitempty"`
	MinSpeed   *float64 `json:"min_speed,omitempty"`
	MaxSpeed   *float64 `json:"max_speed,omitempty"`
	UTurn      bool     `json:"u_turn,omitempty"`
	FrameFrom  *int     `json:"frame_from,omitempty"`
	FrameTo    *int     `json:"frame_to,omitempty"`
	// Limit caps the number of returned matches; 0 means the server
	// default. The response reports the applied limit and whether the
	// scan's hits were truncated by it.
	Limit int `json:"limit,omitempty"`
}

type rectJSON struct {
	X0 float64 `json:"x0"`
	Y0 float64 `json:"y0"`
	X1 float64 `json:"x1"`
	Y1 float64 `json:"y1"`
}

func (r *rectJSON) rect() geom.Rect {
	return geom.Rect{
		Min: geom.Pt(math.Min(r.X0, r.X1), math.Min(r.Y0, r.Y1)),
		Max: geom.Pt(math.Max(r.X0, r.X1), math.Max(r.Y0, r.Y1)),
	}
}

// whereNode desugars the request onto the declarative AST, conjuncts in
// the legacy field order (the planner may reorder them; predicates are
// pure, so answers are unchanged).
func (req *selectRequest) whereNode() (query.Node, error) {
	var ns []query.Node
	if req.PassesThrough != nil {
		ns = append(ns, query.SpatialNode{Kind: query.SpatialPasses, Rect: req.PassesThrough.rect()})
	}
	if req.StartsIn != nil {
		ns = append(ns, query.SpatialNode{Kind: query.SpatialStarts, Rect: req.StartsIn.rect()})
	}
	if req.EndsIn != nil {
		ns = append(ns, query.SpatialNode{Kind: query.SpatialEnds, Rect: req.EndsIn.rect()})
	}
	if req.Heading != "" {
		tol := req.HeadingTol
		if tol <= 0 {
			tol = 0.4
		}
		var angle float64
		switch req.Heading {
		case "east":
			angle = 0
		case "west":
			angle = math.Pi
		case "north":
			angle = 3 * math.Pi / 2
		case "south":
			angle = math.Pi / 2
		default:
			return nil, fmt.Errorf("unknown heading %q", req.Heading)
		}
		ns = append(ns, query.HeadingNode{Dir: req.Heading, Angle: angle, Tol: tol})
	}
	if req.MinSpeed != nil || req.MaxSpeed != nil {
		lo, hi := 0.0, math.Inf(1)
		if req.MinSpeed != nil {
			lo = *req.MinSpeed
		}
		if req.MaxSpeed != nil {
			hi = *req.MaxSpeed
		}
		ns = append(ns, query.SpeedNode{Lo: lo, Hi: hi})
	}
	if req.UTurn {
		ns = append(ns, query.UTurnNode{MinTurn: query.DefaultUTurn})
	}
	if req.FrameFrom != nil || req.FrameTo != nil {
		from, to := 0, 1<<31-1
		if req.FrameFrom != nil {
			from = *req.FrameFrom
		}
		if req.FrameTo != nil {
			to = *req.FrameTo
		}
		ns = append(ns, query.DuringNode{From: from, To: to})
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("no predicate fields set")
	}
	return query.AndNode{Children: ns}, nil
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req selectRequest
	if !s.decode(w, r, queryBodyLimit, &req) {
		return
	}
	if req.Limit < 0 {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "limit must be non-negative")
		return
	}
	where, err := req.whereNode()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	deprecated(w)
	s.runComposed(w, r, &query.Query{Where: where, Limit: req.Limit})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.db.Stats())
}

// handleHealthz is the liveness probe: it takes no database lock, so it
// answers even while a long ingest holds the write lock.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics renders the server's HTTP metrics followed by the
// process-global pipeline metrics in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
	if s.reg != obs.Default {
		obs.Default.WritePrometheus(w)
	}
}

func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, r, http.StatusNotFound, CodeNotFound, "no such endpoint: %s", r.URL.Path)
}

func (s *Server) handleMethodNotAllowed(w http.ResponseWriter, r *http.Request, allow string) {
	w.Header().Set("Allow", allow)
	writeError(w, r, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
		"method %s not allowed on %s", r.Method, r.URL.Path)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
