// Package server exposes a VideoDB over HTTP with a small JSON API — the
// deployment surface of the system: one process ingests camera segments
// and serves motion-similarity and predicate queries.
//
//	POST /v1/segments          {"stream": "...", "segment": {...}}  -> ingest stats
//	POST /v1/query/knn         {"trajectory": [[x,y],...], "k": 5, "exact": false}
//	POST /v1/query/range       {"trajectory": [[x,y],...], "radius": 200}
//	POST /v1/query/select      {"passes_through": {...}, "heading": "east", ...}
//	GET  /v1/stats
//
// All handlers are safe for concurrent use (the server wraps a SharedDB).
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"

	"strgindex/internal/core"
	"strgindex/internal/dist"
	"strgindex/internal/geom"
	"strgindex/internal/query"
	"strgindex/internal/video"
)

// Server is the HTTP facade over a shared database.
type Server struct {
	db  *core.SharedDB
	mux *http.ServeMux
}

// New creates a server over an empty database.
func New(cfg core.Config) *Server {
	return wrap(core.OpenShared(cfg))
}

// NewFromReader creates a server over a database persisted by
// core.VideoDB.Save / SharedDB.Save.
func NewFromReader(r io.Reader, cfg core.Config) (*Server, error) {
	db, err := core.LoadShared(r, cfg)
	if err != nil {
		return nil, err
	}
	return wrap(db), nil
}

func wrap(db *core.SharedDB) *Server {
	s := &Server{db: db, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/segments", s.handleIngest)
	s.mux.HandleFunc("POST /v1/query/knn", s.handleKNN)
	s.mux.HandleFunc("POST /v1/query/range", s.handleRange)
	s.mux.HandleFunc("POST /v1/query/select", s.handleSelect)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// DB exposes the underlying shared database (tests, embedding).
func (s *Server) DB() *core.SharedDB { return s.db }

// ingestRequest is the POST /v1/segments body.
type ingestRequest struct {
	Stream  string         `json:"stream"`
	Segment *video.Segment `json:"segment"`
}

// matchJSON is one query hit on the wire.
type matchJSON struct {
	Stream   string  `json:"stream"`
	Clip     string  `json:"clip"`
	Label    string  `json:"label,omitempty"`
	OGID     int     `json:"og_id"`
	Distance float64 `json:"distance"`
}

func toMatchJSON(ms []core.Match) []matchJSON {
	out := make([]matchJSON, len(ms))
	for i, m := range ms {
		out[i] = matchJSON{
			Stream:   m.Record.Stream,
			Clip:     m.Record.Clip.String(),
			Label:    m.Record.Label,
			OGID:     m.Record.OGID,
			Distance: m.Distance,
		}
	}
	return out
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if req.Stream == "" || req.Segment == nil || len(req.Segment.Frames) == 0 {
		httpError(w, http.StatusBadRequest, "stream and a non-empty segment are required")
		return
	}
	stats, err := s.db.IngestSegment(req.Stream, req.Segment)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "ingest: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

// trajectoryRequest is shared by the knn and range queries.
type trajectoryRequest struct {
	Trajectory [][2]float64 `json:"trajectory"`
	K          int          `json:"k"`
	Exact      bool         `json:"exact"`
	Radius     float64      `json:"radius"`
}

func (t *trajectoryRequest) sequence() (dist.Sequence, error) {
	if len(t.Trajectory) == 0 {
		return nil, fmt.Errorf("empty trajectory")
	}
	seq := make(dist.Sequence, len(t.Trajectory))
	for i, p := range t.Trajectory {
		if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
			return nil, fmt.Errorf("sample %d is NaN", i)
		}
		seq[i] = dist.Vec{p[0], p[1]}
	}
	return seq, nil
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req trajectoryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	seq, err := req.sequence()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.K <= 0 {
		req.K = 5
	}
	var matches []core.Match
	if req.Exact {
		matches = s.db.QueryTrajectoryExact(seq, req.K)
	} else {
		matches = s.db.QueryTrajectory(seq, req.K)
	}
	writeJSON(w, http.StatusOK, toMatchJSON(matches))
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req trajectoryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	seq, err := req.sequence()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Radius <= 0 {
		httpError(w, http.StatusBadRequest, "radius must be positive")
		return
	}
	writeJSON(w, http.StatusOK, toMatchJSON(s.db.QueryRange(seq, req.Radius)))
}

// selectRequest is a declarative predicate description.
type selectRequest struct {
	PassesThrough *rectJSON `json:"passes_through,omitempty"`
	StartsIn      *rectJSON `json:"starts_in,omitempty"`
	EndsIn        *rectJSON `json:"ends_in,omitempty"`
	// Heading is one of "east", "west", "north", "south".
	Heading    string   `json:"heading,omitempty"`
	HeadingTol float64  `json:"heading_tol,omitempty"`
	MinSpeed   *float64 `json:"min_speed,omitempty"`
	MaxSpeed   *float64 `json:"max_speed,omitempty"`
	UTurn      bool     `json:"u_turn,omitempty"`
	FrameFrom  *int     `json:"frame_from,omitempty"`
	FrameTo    *int     `json:"frame_to,omitempty"`
}

type rectJSON struct {
	X0 float64 `json:"x0"`
	Y0 float64 `json:"y0"`
	X1 float64 `json:"x1"`
	Y1 float64 `json:"y1"`
}

func (r *rectJSON) rect() geom.Rect {
	return geom.Rect{
		Min: geom.Pt(math.Min(r.X0, r.X1), math.Min(r.Y0, r.Y1)),
		Max: geom.Pt(math.Max(r.X0, r.X1), math.Max(r.Y0, r.Y1)),
	}
}

// predicate compiles the request into a query predicate.
func (req *selectRequest) predicate() (query.Predicate, error) {
	var ps []query.Predicate
	if req.PassesThrough != nil {
		ps = append(ps, query.PassesThrough(req.PassesThrough.rect()))
	}
	if req.StartsIn != nil {
		ps = append(ps, query.StartsIn(req.StartsIn.rect()))
	}
	if req.EndsIn != nil {
		ps = append(ps, query.EndsIn(req.EndsIn.rect()))
	}
	if req.Heading != "" {
		tol := req.HeadingTol
		if tol <= 0 {
			tol = 0.4
		}
		switch req.Heading {
		case "east":
			ps = append(ps, query.Eastbound(tol))
		case "west":
			ps = append(ps, query.Westbound(tol))
		case "north":
			ps = append(ps, query.Northbound(tol))
		case "south":
			ps = append(ps, query.Southbound(tol))
		default:
			return nil, fmt.Errorf("unknown heading %q", req.Heading)
		}
	}
	if req.MinSpeed != nil || req.MaxSpeed != nil {
		lo, hi := 0.0, math.Inf(1)
		if req.MinSpeed != nil {
			lo = *req.MinSpeed
		}
		if req.MaxSpeed != nil {
			hi = *req.MaxSpeed
		}
		ps = append(ps, query.SpeedBetween(lo, hi))
	}
	if req.UTurn {
		ps = append(ps, query.TurnsBy(math.Pi*0.8))
	}
	if req.FrameFrom != nil || req.FrameTo != nil {
		from, to := 0, 1<<31-1
		if req.FrameFrom != nil {
			from = *req.FrameFrom
		}
		if req.FrameTo != nil {
			to = *req.FrameTo
		}
		ps = append(ps, query.During(from, to))
	}
	if len(ps) == 0 {
		return nil, fmt.Errorf("no predicate fields set")
	}
	return query.And(ps...), nil
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req selectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	pred, err := req.predicate()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, toMatchJSON(s.db.Select(pred)))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.db.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
