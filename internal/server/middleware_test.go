package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"strgindex/internal/core"
	"strgindex/internal/obs"
)

// logCapture is a slog.Handler that records rendered lines.
type logCapture struct {
	mu    sync.Mutex
	lines []string
	buf   bytes.Buffer
	h     slog.Handler
}

func newLogCapture() *logCapture {
	c := &logCapture{}
	c.h = slog.NewTextHandler(&c.buf, &slog.HandlerOptions{Level: slog.LevelInfo})
	return c
}

func (c *logCapture) Enabled(ctx context.Context, l slog.Level) bool { return true }
func (c *logCapture) WithAttrs(attrs []slog.Attr) slog.Handler       { return c }
func (c *logCapture) WithGroup(name string) slog.Handler             { return c }
func (c *logCapture) Handle(ctx context.Context, r slog.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf.Reset()
	if err := c.h.Handle(ctx, r); err != nil {
		return err
	}
	c.lines = append(c.lines, c.buf.String())
	return nil
}

func (c *logCapture) all() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return strings.Join(c.lines, "")
}

func newObservedServer(t *testing.T) (*Server, *httptest.Server, *logCapture) {
	t.Helper()
	cap := newLogCapture()
	s := NewWith(core.DefaultConfig(), Options{
		Logger:   slog.New(cap),
		Registry: obs.NewRegistry(),
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, cap
}

func TestRequestIDPropagation(t *testing.T) {
	_, ts, cap := newObservedServer(t)

	// A generated ID lands in the response header and the log line.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if len(id) != 16 {
		t.Fatalf("generated request id %q, want 16 hex chars", id)
	}
	if !strings.Contains(cap.all(), "request_id="+id) {
		t.Errorf("log missing request_id=%s:\n%s", id, cap.all())
	}

	// An incoming X-Request-ID is honored end to end.
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "upstream-trace-42")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "upstream-trace-42" {
		t.Errorf("echoed request id = %q, want upstream-trace-42", got)
	}
	if !strings.Contains(cap.all(), "request_id=upstream-trace-42") {
		t.Errorf("log missing upstream id:\n%s", cap.all())
	}

	// An error envelope carries the same ID as the log line.
	req3, _ := http.NewRequest("GET", ts.URL+"/v1/nope", nil)
	req3.Header.Set("X-Request-ID", "err-trace-7")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var e errorEnvelope
	if err := json.NewDecoder(resp3.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error.RequestID != "err-trace-7" {
		t.Errorf("envelope request id = %q, want err-trace-7", e.Error.RequestID)
	}
	if !strings.Contains(cap.all(), "request_id=err-trace-7") {
		t.Errorf("log missing err-trace-7:\n%s", cap.all())
	}
}

func TestPanicRecoveryEnvelope(t *testing.T) {
	s, _, cap := newObservedServer(t)
	h := s.middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var e errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("panic response %q: %v", rec.Body.String(), err)
	}
	if e.Error.Code != CodeInternal || e.Error.RequestID == "" {
		t.Errorf("envelope = %+v", e)
	}
	if got := s.Metrics().Counter("strg_http_panics_total", "", nil).Value(); got != 1 {
		t.Errorf("panics_total = %d, want 1", got)
	}
	logs := cap.all()
	if !strings.Contains(logs, "kaboom") || !strings.Contains(logs, "handler panic") {
		t.Errorf("panic not logged:\n%s", logs)
	}
	// The 500 is still counted and timed like any request.
	c := s.Metrics().Counter("strg_http_requests_total", "", obs.Labels{"path": "/v1/stats", "status": "500"})
	if c.Value() != 1 {
		t.Errorf("requests_total{500} = %d, want 1", c.Value())
	}
}

func TestMiddlewareMetricsCounts(t *testing.T) {
	s, ts, _ := newObservedServer(t)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	reg := s.Metrics()
	if got := reg.Counter("strg_http_requests_total", "", obs.Labels{"path": "/healthz", "status": "200"}).Value(); got != 3 {
		t.Errorf("requests_total = %d, want 3", got)
	}
	h := reg.Histogram("strg_http_request_seconds", "", obs.Labels{"path": "/healthz"}, nil)
	if h.Count() != 3 {
		t.Errorf("histogram count = %d, want 3", h.Count())
	}
	if h.Sum() <= 0 {
		t.Errorf("histogram sum = %v, want > 0", h.Sum())
	}
	if got := reg.Gauge("strg_http_inflight", "", nil).Value(); got != 0 {
		t.Errorf("inflight after drain = %d, want 0", got)
	}
	// Unknown paths collapse into the "other" label.
	resp, err := http.Get(ts.URL + "/totally/unknown")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := reg.Counter("strg_http_requests_total", "", obs.Labels{"path": "other", "status": "404"}).Value(); got != 1 {
		t.Errorf(`requests_total{other,404} = %d, want 1`, got)
	}
}

func TestHealthz(t *testing.T) {
	_, ts, _ := newObservedServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Errorf("body = %v", body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newObservedServer(t)
	ingest(t, ts, "walker", 120, 1)
	resp, body := post(t, ts.URL+"/v1/query/knn", map[string]any{
		"trajectory": [][2]float64{{16, 120}, {304, 120}},
		"k":          1,
		"exact":      true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("knn status %d: %s", resp.StatusCode, body)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	// HTTP-layer metrics (per-server registry).
	for _, want := range []string{
		`strg_http_requests_total{path="/v1/segments",status="200"} 1`,
		`strg_http_requests_total{path="/v1/query/knn",status="200"} 1`,
		`strg_http_request_seconds_bucket{path="/v1/query/knn",le="+Inf"} 1`,
		"strg_http_inflight",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Pipeline metrics (process-global registry): these are cumulative
	// across tests, so assert presence rather than exact values.
	for _, want := range []string{
		"strg_dist_evals_total",
		"strg_index_leaf_scans_total",
		"strg_index_searches_total",
		"strg_ingest_segments_total",
		"strg_build_rag_seconds_count",
		"strg_query_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestCanceledRequestCounted covers the server side of cancellation: a
// request whose context is already dead reaches the select scan, which
// aborts; the middleware records the 499-class outcome.
func TestCanceledRequestCounted(t *testing.T) {
	s, ts, cap := newObservedServer(t)
	ingest(t, ts, "walker", 120, 1)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	raw, _ := json.Marshal(map[string]any{"heading": "east"})
	req := httptest.NewRequest("POST", "/v1/query/select", bytes.NewReader(raw)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != statusClientClosed {
		t.Fatalf("status = %d, want %d", rec.Code, statusClientClosed)
	}
	if got := s.Metrics().Counter("strg_http_requests_total", "", obs.Labels{"path": "/v1/query/select", "status": "499"}).Value(); got != 1 {
		t.Errorf("requests_total{499} = %d, want 1", got)
	}
	if !strings.Contains(cap.all(), "query canceled") {
		t.Errorf("cancellation not logged:\n%s", cap.all())
	}
}

func TestPprofGated(t *testing.T) {
	// Off by default.
	_, ts, _ := newObservedServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without flag: status %d, want 404", resp.StatusCode)
	}
	// On when enabled.
	s2 := NewWith(core.DefaultConfig(), Options{
		Logger:      slog.New(newLogCapture()),
		EnablePprof: true,
	})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof enabled: status %d, want 200", resp2.StatusCode)
	}
}
