package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"strgindex/internal/core"
	"strgindex/internal/dist"
	"strgindex/internal/geom"
	"strgindex/internal/query"
)

// identityHarness is one server plus a reference database built from the
// same configuration and fed the same segments in the same order. Every
// HTTP query the test issues is mirrored by exactly one direct core call
// on the reference, so per-database state (the distance cache) evolves in
// lockstep and stats must agree byte for byte.
type identityHarness struct {
	ts  *httptest.Server
	ref *core.SharedDB
}

func newIdentityHarness(t *testing.T, shards int, disableCascade bool) *identityHarness {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Concurrency = 2
	cfg.Index.Shards = shards
	cfg.Index.DisableCascade = disableCascade
	s := NewWith(cfg, quietOptions())
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	h := &identityHarness{ts: ts, ref: core.OpenShared(cfg)}
	for i, spec := range []struct {
		label string
		y     float64
		seed  int64
	}{{"east-mid", 120, 7}, {"east-high", 60, 8}, {"east-low", 180, 9}} {
		ingest(t, ts, spec.label, spec.y, spec.seed)
		if _, err := h.ref.IngestSegment("cam0", testSegment(t, spec.label, spec.y, spec.seed)); err != nil {
			t.Fatalf("reference ingest %d: %v", i, err)
		}
	}
	return h
}

// postQuery posts body to path and decodes the unified envelope, also
// returning the response for header assertions.
func (h *identityHarness) postQuery(t *testing.T, path string, body any) (*http.Response, queryResponse) {
	t.Helper()
	resp, raw := post(t, h.ts.URL+path, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, raw)
	}
	return resp, decodeQuery(t, raw)
}

// zeroMicros strips the only nondeterministic field (stage wall time)
// before whole-envelope comparison.
func zeroMicros(r queryResponse) queryResponse {
	stages := make([]stageJSON, len(r.Stats.Stages))
	copy(stages, r.Stats.Stages)
	for i := range stages {
		stages[i].Micros = 0
	}
	r.Stats.Stages = stages
	return r
}

// TestLegacyEndpointsByteIdentical pins the API redesign's central
// promise at every shard count and with the lower-bound cascade both on
// and off: the deprecated knn/range/select endpoints are pure
// desugarings — matches AND search accounting byte-identical to the
// direct core legacy surfaces — and the equivalent /v1/query DSL
// document produces the identical envelope.
func TestLegacyEndpointsByteIdentical(t *testing.T) {
	ctx := context.Background()
	traj := [][2]float64{{16, 120}, {106, 120}, {196, 120}}
	seq := make(dist.Sequence, len(traj))
	for i, p := range traj {
		seq[i] = dist.Vec{p[0], p[1]}
	}
	for _, shards := range []int{1, 2, 4} {
		for _, noCascade := range []bool{false, true} {
			name := map[bool]string{false: "cascade", true: "exact-only"}[noCascade]
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				h := newIdentityHarness(t, shards, noCascade)

				// Approximate k-NN: legacy endpoint, then its DSL spelling,
				// each mirrored by one reference call.
				legacyBody := map[string]any{"trajectory": traj, "k": 3}
				dslBody := map[string]any{"similar": map[string]any{"trajectory": traj, "k": 3}}
				resp, gotLegacy := h.postQuery(t, "/v1/query/knn", legacyBody)
				if resp.Header.Get("Deprecation") != "true" {
					t.Error("knn: no Deprecation header")
				}
				ms, st, err := h.ref.QueryTrajectoryStatsCtx(ctx, seq, 3)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotLegacy.Matches, toMatchJSON(ms)) {
					t.Errorf("knn matches = %+v, core = %+v", gotLegacy.Matches, toMatchJSON(ms))
				}
				if gotLegacy.Stats.searchStatsJSON != toStatsJSON(st) {
					t.Errorf("knn stats = %+v, core = %+v", gotLegacy.Stats.searchStatsJSON, toStatsJSON(st))
				}
				if gotLegacy.Plan.Strategy != string(query.StrategyIndex) {
					t.Errorf("knn plan strategy = %q, want index", gotLegacy.Plan.Strategy)
				}
				resp, gotDSL := h.postQuery(t, "/v1/query", dslBody)
				if resp.Header.Get("Deprecation") != "" {
					t.Error("/v1/query marked deprecated")
				}
				if _, st2, err := h.ref.QueryTrajectoryStatsCtx(ctx, seq, 3); err != nil {
					t.Fatal(err)
				} else if gotDSL.Stats.searchStatsJSON != toStatsJSON(st2) {
					t.Errorf("knn DSL stats = %+v, core = %+v", gotDSL.Stats.searchStatsJSON, toStatsJSON(st2))
				}
				if !reflect.DeepEqual(zeroMicros(gotLegacy).Matches, zeroMicros(gotDSL).Matches) {
					t.Error("knn: DSL and legacy matches differ")
				}

				// Exact k-NN.
				_, gotExact := h.postQuery(t, "/v1/query/knn",
					map[string]any{"trajectory": traj, "k": 3, "exact": true})
				ems, est, err := h.ref.QueryTrajectoryExactStatsCtx(ctx, seq, 3)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotExact.Matches, toMatchJSON(ems)) {
					t.Errorf("exact matches = %+v, core = %+v", gotExact.Matches, toMatchJSON(ems))
				}
				if gotExact.Stats.searchStatsJSON != toStatsJSON(est) {
					t.Errorf("exact stats = %+v, core = %+v", gotExact.Stats.searchStatsJSON, toStatsJSON(est))
				}

				// Range.
				const radius = 900.0
				_, gotRange := h.postQuery(t, "/v1/query/range",
					map[string]any{"trajectory": traj, "radius": radius})
				rms, rst, err := h.ref.QueryRangeStatsCtx(ctx, seq, radius)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotRange.Matches, toMatchJSON(rms)) {
					t.Errorf("range matches = %+v, core = %+v", gotRange.Matches, toMatchJSON(rms))
				}
				if gotRange.Stats.searchStatsJSON != toStatsJSON(rst) {
					t.Errorf("range stats = %+v, core = %+v", gotRange.Stats.searchStatsJSON, toStatsJSON(rst))
				}
				_, gotRangeDSL := h.postQuery(t, "/v1/query",
					map[string]any{"similar": map[string]any{"trajectory": traj, "radius": radius}})
				if _, _, err := h.ref.QueryRangeStatsCtx(ctx, seq, radius); err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotRange.Matches, gotRangeDSL.Matches) {
					t.Error("range: DSL and legacy matches differ")
				}

				// Select: legacy predicate fields vs the reference Select
				// scan vs the DSL where tree.
				rect := map[string]any{"x0": 140, "y0": 0, "x1": 180, "y1": 240}
				_, gotSel := h.postQuery(t, "/v1/query/select",
					map[string]any{"passes_through": rect, "heading": "east"})
				want := h.ref.Select(query.And(
					query.PassesThrough(geom.Rect{Min: geom.Pt(140, 0), Max: geom.Pt(180, 240)}),
					query.Eastbound(0.4),
				))
				if !reflect.DeepEqual(gotSel.Matches, toMatchJSON(want)) {
					t.Errorf("select matches = %+v, core Select = %+v", gotSel.Matches, toMatchJSON(want))
				}
				if gotSel.Limit != defaultSelectLimit {
					t.Errorf("select limit = %d, want server default %d", gotSel.Limit, defaultSelectLimit)
				}
				_, gotSelDSL := h.postQuery(t, "/v1/query", map[string]any{
					"where": map[string]any{"and": []any{
						map[string]any{"passes_through": rect},
						map[string]any{"heading": map[string]any{"dir": "east"}},
					}},
				})
				if !reflect.DeepEqual(zeroMicros(gotSel), zeroMicros(gotSelDSL)) {
					t.Errorf("select: DSL envelope %+v, legacy %+v", zeroMicros(gotSelDSL), zeroMicros(gotSel))
				}
			})
		}
	}
}
