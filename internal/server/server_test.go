package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"

	"strgindex/internal/core"
	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/video"
)

// quietOptions silences per-request logging in tests.
func quietOptions() Options {
	return Options{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
}

// testSegment builds a small scene with one eastbound walker.
func testSegment(t *testing.T, label string, y float64, seed int64) *video.Segment {
	t.Helper()
	seg, err := video.Generate(video.SceneConfig{
		Name: "seg-" + label, Width: 320, Height: 240, FPS: 12, Frames: 20,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: 0.8, Seed: seed,
		Objects: []video.ObjectSpec{{
			Label: label,
			Parts: []video.PartSpec{
				{Offset: geom.Vec(0, -16), Size: 100, Color: graph.Color{R: 0.8, G: 0.65, B: 0.5}},
				{Offset: geom.Vec(0, 0), Size: 350, Color: graph.Color{R: 0.7, G: 0.2, B: 0.4}},
				{Offset: geom.Vec(0, 17), Size: 250, Color: graph.Color{R: 0.2, G: 0.3, B: 0.5}},
			},
			Path:  []geom.Point{geom.Pt(16, y), geom.Pt(304, y)},
			Start: 0, End: 20,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewWith(core.DefaultConfig(), quietOptions())
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// decodeQuery parses the unified /v1/query* response envelope.
func decodeQuery(t *testing.T, body []byte) queryResponse {
	t.Helper()
	var q queryResponse
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatalf("decoding query response %s: %v", body, err)
	}
	return q
}

// decodeSelect parses the enveloped /v1/query/select response (the same
// unified envelope).
func decodeSelect(t *testing.T, body []byte) queryResponse {
	t.Helper()
	return decodeQuery(t, body)
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func ingest(t *testing.T, ts *httptest.Server, label string, y float64, seed int64) {
	t.Helper()
	resp, body := post(t, ts.URL+"/v1/segments", map[string]any{
		"stream":  "cam0",
		"segment": testSegment(t, label, y, seed),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
}

func TestIngestAndStats(t *testing.T) {
	_, ts := newTestServer(t)
	ingest(t, ts, "walker", 120, 1)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats core.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 1 || stats.OGs != 1 {
		t.Errorf("stats = %+v, want 1 segment, 1 OG", stats)
	}
}

func TestKNNQuery(t *testing.T) {
	_, ts := newTestServer(t)
	ingest(t, ts, "low", 180, 1)
	ingest(t, ts, "high", 60, 2)

	resp, body := post(t, ts.URL+"/v1/query/knn", map[string]any{
		"trajectory": [][2]float64{{16, 60}, {160, 60}, {304, 60}},
		"k":          1,
		"exact":      true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	q := decodeQuery(t, body)
	if len(q.Matches) != 1 {
		t.Fatalf("matches = %d, want 1", len(q.Matches))
	}
	if q.Matches[0].Label != "high" {
		t.Errorf("top match label = %v, want high", q.Matches[0].Label)
	}
	if q.Stats.Records == 0 {
		t.Errorf("stats.records = 0, want > 0 (%s)", body)
	}
	if got := q.Stats.CacheHits + q.Stats.LBQuickPruned + q.Stats.LBEnvelopePruned +
		q.Stats.DPEvaluated + q.Stats.DPAbandoned; got != q.Stats.Records {
		t.Errorf("stats dispositions = %d, want records = %d (%s)", got, q.Stats.Records, body)
	}
}

func TestRangeQuery(t *testing.T) {
	_, ts := newTestServer(t)
	ingest(t, ts, "walker", 120, 1)
	resp, body := post(t, ts.URL+"/v1/query/range", map[string]any{
		"trajectory": [][2]float64{{160, 120}},
		"radius":     1e9,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	q := decodeQuery(t, body)
	if len(q.Matches) != 1 {
		t.Errorf("matches = %d, want 1", len(q.Matches))
	}
}

func TestSelectQuery(t *testing.T) {
	_, ts := newTestServer(t)
	ingest(t, ts, "walker", 120, 1)
	resp, body := post(t, ts.URL+"/v1/query/select", map[string]any{
		"heading":        "east",
		"passes_through": map[string]float64{"x0": 100, "y0": 80, "x1": 220, "y1": 160},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	sel := decodeSelect(t, body)
	if len(sel.Matches) != 1 || sel.Total != 1 || sel.Truncated {
		t.Errorf("select = %+v, want 1 untruncated match (%s)", sel, body)
	}
	// The opposite heading matches nothing.
	_, body = post(t, ts.URL+"/v1/query/select", map[string]any{"heading": "west"})
	if sel := decodeSelect(t, body); len(sel.Matches) != 0 || sel.Total != 0 {
		t.Errorf("westbound matches = %+v, want 0", sel)
	}
}

func TestSelectLimitTruncates(t *testing.T) {
	_, ts := newTestServer(t)
	ingest(t, ts, "a", 60, 1)
	ingest(t, ts, "b", 120, 2)
	ingest(t, ts, "c", 180, 3)
	resp, body := post(t, ts.URL+"/v1/query/select", map[string]any{
		"heading": "east",
		"limit":   2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	sel := decodeSelect(t, body)
	if len(sel.Matches) != 2 || sel.Total != 3 || !sel.Truncated || sel.Limit != 2 {
		t.Errorf("select = %+v, want 2/3 truncated at limit 2", sel)
	}
	// A negative limit is rejected.
	resp, _ = post(t, ts.URL+"/v1/query/select", map[string]any{"heading": "east", "limit": -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative limit status = %d, want 400", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	tests := []struct {
		name string
		path string
		body any
	}{
		{"ingest empty", "/v1/segments", map[string]any{"stream": "x"}},
		{"ingest no stream", "/v1/segments", map[string]any{"segment": testSegment(t, "a", 100, 1)}},
		{"knn empty trajectory", "/v1/query/knn", map[string]any{"k": 3}},
		{"range no radius", "/v1/query/range", map[string]any{"trajectory": [][2]float64{{1, 1}}}},
		{"select no fields", "/v1/query/select", map[string]any{}},
		{"select bad heading", "/v1/query/select", map[string]any{"heading": "up"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+tt.path, tt.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status %d, want 400 (%s)", resp.StatusCode, body)
			}
			var e errorEnvelope
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("envelope: %s: %v", body, err)
			}
			if e.Error.Code != CodeBadRequest {
				t.Errorf("code = %q, want %q (%s)", e.Error.Code, CodeBadRequest, body)
			}
			if e.Error.Message == "" || e.Error.RequestID == "" {
				t.Errorf("envelope incomplete: %s", body)
			}
			if got := resp.Header.Get("X-Request-ID"); got != e.Error.RequestID {
				t.Errorf("header request id %q != envelope %q", got, e.Error.RequestID)
			}
		})
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/query/knn", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON status %d", resp.StatusCode)
	}
}

func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t)
	// A query body over the 1 MiB query limit: a huge (valid) JSON string.
	big := append([]byte(`{"trajectory": [[1,1]], "k": 1, "pad": "`), bytes.Repeat([]byte("x"), 2<<20)...)
	big = append(big, []byte(`"}`)...)
	resp, err := http.Post(ts.URL+"/v1/query/knn", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var e errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != CodeTooLarge {
		t.Errorf("code = %q, want %q", e.Error.Code, CodeTooLarge)
	}
}

func TestNotFoundEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	var e errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != CodeNotFound || e.Error.RequestID == "" {
		t.Errorf("envelope = %+v", e)
	}
}

func TestMethodRouting(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/query/knn")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET on POST route: status %d", resp.StatusCode)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t)
	ingest(t, ts, "walker", 120, 1)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 20; i++ {
				resp, _ := post(t, ts.URL+"/v1/query/knn", map[string]any{
					"trajectory": [][2]float64{{16, 120}, {304, 120}},
					"k":          2,
				})
				if resp.StatusCode != http.StatusOK {
					done <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewFromReader(t *testing.T) {
	// Build and persist a database, then serve it.
	s, ts := newTestServer(t)
	ingest(t, ts, "walker", 120, 1)
	var buf bytes.Buffer
	if err := s.DB().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewFromReaderWith(&buf, core.DefaultConfig(), quietOptions())
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(loaded)
	defer ts2.Close()
	resp, body := post(t, ts2.URL+"/v1/query/knn", map[string]any{
		"trajectory": [][2]float64{{16, 120}, {304, 120}},
		"k":          1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	q := decodeQuery(t, body)
	if len(q.Matches) != 1 || q.Matches[0].Label != "walker" {
		t.Errorf("matches = %s", body)
	}
	if _, err := NewFromReader(bytes.NewReader([]byte("junk")), core.DefaultConfig()); err == nil {
		t.Error("NewFromReader accepted junk")
	}
}

func TestMethodNotAllowedEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/query/knn")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow = %q, want POST", allow)
	}
	var e errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != CodeMethodNotAllowed || e.Error.RequestID == "" {
		t.Errorf("envelope = %+v", e)
	}
}

func TestSelectSpeedAndFrames(t *testing.T) {
	_, ts := newTestServer(t)
	ingest(t, ts, "walker", 120, 1)
	min := 5.0
	resp, body := post(t, ts.URL+"/v1/query/select", map[string]any{
		"min_speed":  min,
		"frame_from": 0,
		"frame_to":   100,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if sel := decodeSelect(t, body); len(sel.Matches) != 1 {
		t.Errorf("matches = %d, want 1 (%s)", len(sel.Matches), body)
	}
	// Impossible speed band.
	_, body = post(t, ts.URL+"/v1/query/select", map[string]any{"min_speed": 1e6})
	if sel := decodeSelect(t, body); len(sel.Matches) != 0 {
		t.Errorf("impossible speed matched %d", len(sel.Matches))
	}
}

// TestQueryApproxDisabledEnvelope: asking for the approximate tier on a
// server without it must answer a clean versioned 400 with the stable
// approx_disabled code — a client configuration error, never a 500.
func TestQueryApproxDisabledEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	ingest(t, ts, "walker", 120, 1)

	resp, body := post(t, ts.URL+"/v1/query", map[string]any{
		"similar": map[string]any{
			"trajectory": [][2]float64{{16, 120}, {160, 120}, {304, 120}},
			"k":          3,
			"mode":       "approx",
		},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("decoding error envelope %s: %v", body, err)
	}
	if env.Error.Code != CodeApproxDisabled {
		t.Errorf("code %q, want %q", env.Error.Code, CodeApproxDisabled)
	}
	if env.Error.RequestID == "" {
		t.Error("error envelope lost the request id")
	}

	// Malformed approx knobs are plain validation errors (bad_request):
	// the DSL layer rejects them before any tier question arises.
	resp, body = post(t, ts.URL+"/v1/query", map[string]any{
		"similar": map[string]any{
			"trajectory":    [][2]float64{{16, 120}, {304, 120}},
			"k":             3,
			"mode":          "approx",
			"nprobe":        4,
			"recall_target": 0.9,
		},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("conflicting knobs: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != CodeBadRequest {
		t.Errorf("conflicting knobs: code %q (err %v), want %q", env.Error.Code, err, CodeBadRequest)
	}
}

// TestQueryApproxEndToEnd: with the tier enabled, "mode": "approx"
// answers through strategy approx and the envelope carries the probe
// accounting alongside the exact rerank's search stats.
func TestQueryApproxEndToEnd(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Approx = core.ApproxConfig{Enabled: true, NLists: 2, TrainSize: 2}
	s := NewWith(cfg, quietOptions())
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	for i := 0; i < 3; i++ {
		ingest(t, ts, "walker", 60+40*float64(i), int64(i+1))
	}

	resp, body := post(t, ts.URL+"/v1/query", map[string]any{
		"similar": map[string]any{
			"trajectory":    [][2]float64{{16, 120}, {160, 120}, {304, 120}},
			"k":             2,
			"mode":          "approx",
			"recall_target": 1,
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	res := decodeQuery(t, body)
	if res.Plan.Strategy != "approx" || res.Plan.NProbe == 0 {
		t.Errorf("plan = %+v, want strategy approx with a resolved nprobe", res.Plan)
	}
	if res.Stats.Approx == nil {
		t.Fatalf("no approx accounting in %s", body)
	}
	if res.Stats.Approx.Probed != res.Stats.Approx.Lists || res.Stats.Approx.RecallProxy != 1 {
		t.Errorf("recall_target 1 probed %d/%d lists (proxy %g), want all",
			res.Stats.Approx.Probed, res.Stats.Approx.Lists, res.Stats.Approx.RecallProxy)
	}
	if len(res.Matches) == 0 || res.Stats.Records == 0 {
		t.Errorf("empty approx answer: %d matches, %d reranked", len(res.Matches), res.Stats.Records)
	}
}
