package server

import (
	"errors"
	"net/http"
	"strconv"

	"strgindex/internal/core"
	"strgindex/internal/obs"
)

// Replication handlers: the primary side of the WAL-streaming protocol
// (see internal/replica for the wire format and the replica-side loop).
// Register and ack are tiny JSON POSTs; snapshot and wal stream opaque
// verified containers (application/octet-stream) — the bytes carry their
// own CRCs and Merkle root, so transport framing stays dumb. All of them
// ride the regular middleware: request IDs, metrics, admission control —
// a replica herd competes for the same in-flight slots as queries and is
// shed with jittered Retry-After like any other client.

// replIdentRequest is the POST /v1/replication/register and ack body;
// seq/off are only meaningful for ack.
type replIdentRequest struct {
	Replica string `json:"replica"`
	Seq     uint64 `json:"seq"`
	Off     int64  `json:"off"`
}

const replBodyLimit = 4 << 10

// handleReplRegister is POST /v1/replication/register: adds the replica
// to the registry with an acked position of zero, pinning the retained
// WAL chain before the replica fetches its bootstrap snapshot.
func (s *Server) handleReplRegister(w http.ResponseWriter, r *http.Request) {
	var req replIdentRequest
	if !s.decode(w, r, replBodyLimit, &req) {
		return
	}
	if err := s.opts.Replication.Register(req.Replica); err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "registered"})
}

// handleReplAck is POST /v1/replication/ack: records the replica's
// durably-applied position so WAL rotation can release older logs.
func (s *Server) handleReplAck(w http.ResponseWriter, r *http.Request) {
	var req replIdentRequest
	if !s.decode(w, r, replBodyLimit, &req) {
		return
	}
	if err := s.opts.Replication.Ack(req.Replica, core.WALPos{Seq: req.Seq, Off: req.Off}); err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "acked"})
}

// handleReplSnapshot is GET /v1/replication/snapshot: streams a
// bootstrap snapshot. The container carries its own CRC trailer, so a
// failure mid-stream leaves the client with bytes that fail verification
// — the envelope is only written if nothing has gone out yet.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("replica"); id != "" {
		s.opts.Replication.Touch(id)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	cw := &countingWriter{w: w}
	pos, err := s.opts.Replication.WriteSnapshot(cw)
	if err != nil {
		if cw.n == 0 {
			writeError(w, r, http.StatusInternalServerError, CodeInternal, "snapshot: %v", err)
		} else {
			s.log.Error("snapshot stream failed mid-body",
				"request_id", obs.RequestIDFrom(r.Context()), "written", cw.n, "err", err)
		}
		return
	}
	s.log.Info("bootstrap snapshot served",
		"request_id", obs.RequestIDFrom(r.Context()), "pos", pos.String(), "bytes", cw.n)
}

type countingWriter struct {
	w http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// handleReplWAL is GET /v1/replication/wal?replica&seq&off[&max]: one
// Merkle-rooted batch of WAL frames starting at the requested position.
// A position the primary no longer retains answers 410 wal_gone — the
// replica's cue to re-bootstrap.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if id := q.Get("replica"); id != "" {
		s.opts.Replication.Touch(id)
	}
	seq, err := strconv.ParseUint(q.Get("seq"), 10, 64)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "bad seq: %v", err)
		return
	}
	off, err := strconv.ParseInt(q.Get("off"), 10, 64)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "bad off: %v", err)
		return
	}
	var maxBytes int64
	if m := q.Get("max"); m != "" {
		if maxBytes, err = strconv.ParseInt(m, 10, 64); err != nil {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest, "bad max: %v", err)
			return
		}
	}
	batch, err := s.opts.Replication.Batch(core.WALPos{Seq: seq, Off: off}, maxBytes)
	if errors.Is(err, core.ErrWALGone) {
		writeError(w, r, http.StatusGone, CodeWALGone, "%v", err)
		return
	}
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, CodeInternal, "wal batch: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(batch)
}

// handleReplDigest is GET /v1/replication/digest: the primary's
// anti-entropy state digest (position, per-shard hashes, corpus hash).
func (s *Server) handleReplDigest(w http.ResponseWriter, r *http.Request) {
	d, err := s.opts.Replication.Digest()
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, CodeInternal, "digest: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// handleReplStatus is GET /v1/replication/status, answered by both
// roles: the primary reports its registry and committed WAL end, a
// replica its applied position, lag and health.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	if s.opts.Replica != nil {
		writeJSON(w, http.StatusOK, s.opts.Replica.Status())
		return
	}
	writeJSON(w, http.StatusOK, s.opts.Replication.Status())
}
