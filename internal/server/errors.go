package server

import (
	"fmt"
	"net/http"

	"strgindex/internal/obs"
)

// Stable machine-readable error codes of the /v1 JSON error envelope.
// Clients dispatch on the code; the message is human-readable and may
// change between versions.
const (
	// CodeBadRequest covers malformed bodies, invalid parameters and
	// segments the pipeline rejects.
	CodeBadRequest = "bad_request"
	// CodeNotFound covers unknown routes.
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed covers known routes hit with an unsupported
	// method; the response carries an Allow header.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeTooLarge covers request bodies over the per-endpoint limit.
	CodeTooLarge = "too_large"
	// CodeInternal covers handler panics and pool failures.
	CodeInternal = "internal"
	// CodeOverloaded covers requests shed by admission control: the
	// in-flight cap was reached and the request timed out in the queue.
	// The response carries a Retry-After header.
	CodeOverloaded = "overloaded"
	// CodeTimeout covers requests cut off by the server-side per-request
	// deadline (504).
	CodeTimeout = "timeout"
	// CodeUnavailable covers /readyz while the server is not ready:
	// recovery still replaying, or shutdown draining.
	CodeUnavailable = "unavailable"
	// CodeApproxDisabled covers a query that asked for the approximate
	// similarity tier ("mode": "approx") on a server whose database was
	// opened without it. A client error (400), not a server fault: the
	// tier is strictly opt-in configuration.
	CodeApproxDisabled = "approx_disabled"
	// CodeReadOnlyReplica covers ingest attempts against a read replica
	// (403): replicas accept mutations only from the primary's WAL stream.
	CodeReadOnlyReplica = "read_only_replica"
	// CodeWALGone covers a replication fetch from a WAL position the
	// primary no longer retains (410): the replica must re-bootstrap from
	// a fresh snapshot.
	CodeWALGone = "wal_gone"
	// CodeFrameOrder covers a segment or feed batch whose frame indices
	// are out of order, duplicated or gapped (the video.ErrFrameOrder
	// family). On the feed API it means the client's cursor diverged from
	// the feed's (409): resynchronize from the next_frame the feed
	// reports, do not re-encode the batch.
	CodeFrameOrder = "frame_order"
)

// errorBody is the payload of the envelope:
//
//	{"error": {"code": "bad_request", "message": "...", "request_id": "..."}}
//
// The request_id matches the X-Request-ID response header and the slog
// line for the request, so a client-reported failure joins the server
// logs in one grep.
type errorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id"`
}

type errorEnvelope struct {
	Error errorBody `json:"error"`
}

// writeError writes the versioned JSON error envelope for the request.
func writeError(w http.ResponseWriter, r *http.Request, status int, code, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Error: errorBody{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		RequestID: obs.RequestIDFrom(r.Context()),
	}})
}
