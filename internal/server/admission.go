package server

import (
	"context"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// exempt reports whether a path bypasses admission control: probes and
// metrics must answer even when the API is saturated — that is the whole
// point of having them. Subscription event streams are exempt too: they
// are long-lived idle waits, so counting each against the in-flight cap
// would let a handful of subscribers starve the working endpoints, and a
// per-request deadline would cut every stream mid-delivery.
func exempt(path string) bool {
	switch path {
	case "/healthz", "/readyz", "/metrics":
		return true
	}
	if strings.HasPrefix(path, "/v1/subscriptions/") && strings.HasSuffix(path, "/events") {
		return true
	}
	return strings.HasPrefix(path, "/debug/pprof")
}

// admission wraps the mux with load shedding and per-request deadlines.
// It sits under the observability middleware, so shed requests still get
// a request ID, a metric sample and a log line.
//
// The model is a counting semaphore of MaxInFlight slots with a bounded
// queue in time rather than space: a request that cannot get a slot
// within QueueTimeout is shed with 429 and a Retry-After hint, which
// keeps worst-case latency bounded and tells well-behaved clients to
// back off instead of piling on.
func (s *Server) admission(next http.Handler) http.Handler {
	if s.opts.MaxInFlight <= 0 && s.opts.RequestTimeout <= 0 {
		return next
	}
	shed := s.reg.Counter("strg_http_shed_total",
		"requests rejected by admission control with 429", nil)
	var slots chan struct{}
	if s.opts.MaxInFlight > 0 {
		slots = make(chan struct{}, s.opts.MaxInFlight)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		if slots != nil {
			select {
			case slots <- struct{}{}:
			default:
				// Saturated: wait for a slot, but not forever.
				queue := time.NewTimer(s.opts.QueueTimeout)
				select {
				case slots <- struct{}{}:
					queue.Stop()
				case <-queue.C:
					shed.Inc()
					retryAfter := shedRetryAfter(s.opts.QueueTimeout)
					w.Header().Set("Retry-After", retryAfter)
					writeError(w, r, http.StatusTooManyRequests, CodeOverloaded,
						"server at capacity (%d in flight); retry after %ss",
						s.opts.MaxInFlight, retryAfter)
					return
				case <-r.Context().Done():
					queue.Stop()
					return // client gave up while queued; 499 via middleware
				}
			}
			defer func() { <-slots }()
		}
		if s.opts.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}

// shedRetryAfter computes one shed response's Retry-After hint: the
// queue timeout rounded up to whole seconds, plus uniform jitter of up
// to the same span again. A fixed hint would have every shed client —
// reconnecting replicas included — retry in lockstep and re-saturate the
// queue at the same instant; the jitter spreads the herd.
func shedRetryAfter(queueTimeout time.Duration) string {
	base := int((queueTimeout + time.Second - 1) / time.Second)
	if base < 1 {
		base = 1
	}
	return strconv.Itoa(base + rand.IntN(base+1))
}

// handleReadyz is the readiness probe: 200 only when the server should
// receive traffic. It is false while recovery replays the write-ahead
// log and during shutdown drain, so orchestrators route around the
// process without killing it (that is /healthz's call); on a replica the
// ReadyCheck hook additionally fails it while replication lag exceeds
// the configured bound or the state awaits a re-bootstrap.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeError(w, r, http.StatusServiceUnavailable, CodeUnavailable, "not ready")
		return
	}
	if s.opts.ReadyCheck != nil {
		if err := s.opts.ReadyCheck(); err != nil {
			writeError(w, r, http.StatusServiceUnavailable, CodeUnavailable, "not ready: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// SetReady flips the readiness probe: true once recovery completes,
// false when shutdown starts draining.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the current readiness state.
func (s *Server) Ready() bool { return s.ready.Load() }
