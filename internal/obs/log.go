package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"os"
)

// ctxKey is the private context-key type for request identity.
type ctxKey int

const requestIDKey ctxKey = iota

// NewRequestID returns a fresh 16-hex-digit request identifier. IDs are
// random rather than sequential so logs from restarted or horizontally
// scaled processes never collide.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the supported platforms; a zero ID
		// beats taking down the request path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom extracts the request ID, or "" when the context carries
// none (background work, tests calling the core API directly).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// NewLogger returns the default structured logger: text handler on stderr
// at Info. Components that want JSON or a capture buffer build their own
// slog.Logger and inject it instead.
func NewLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
}
