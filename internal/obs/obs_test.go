package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "requests served", Labels{"path": "/v1/x", "status": "200"})
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	g := r.Gauge("test_inflight", "in-flight requests", nil)
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("gauge = %d, want 1", g.Value())
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE test_requests_total counter",
		`test_requests_total{path="/v1/x",status="200"} 3`,
		"# TYPE test_inflight gauge",
		"test_inflight 1",
		"# HELP test_requests_total requests served",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGetOrCreateSharesInstance(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "", nil)
	b := r.Counter("shared_total", "later help", nil)
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("instances not shared")
	}
	// Distinct labels are distinct instances.
	c := r.Counter("shared_total", "", Labels{"k": "v"})
	if c == a {
		t.Fatal("distinct labels shared an instance")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflict", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type conflict")
		}
	}()
	r.Gauge("conflict", "", nil)
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", nil, []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		"test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "", nil, []float64{1, 2})
	h.Observe(1) // le="1" is inclusive in Prometheus semantics
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `b_seconds_bucket{le="1"} 1`) {
		t.Errorf("boundary sample not in inclusive bucket:\n%s", b.String())
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	v := 41.0
	r.CounterFunc("func_total", "derived", nil, func() float64 { return v })
	r.GaugeFunc("func_gauge", "", nil, func() float64 { return -2 })
	v = 42
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, "func_total 42") {
		t.Errorf("counter func not read at scrape time:\n%s", out)
	}
	if !strings.Contains(out, "func_gauge -2") {
		t.Errorf("gauge func missing:\n%s", out)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "", nil)
	h := r.Histogram("conc_seconds", "", nil, []float64{0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 || h.Sum() != 2000 {
		t.Errorf("histogram count=%d sum=%v, want 8000/2000", h.Count(), h.Sum())
	}
}

func TestRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("request IDs %q, %q: want 16 hex chars", a, b)
	}
	if a == b {
		t.Fatal("request IDs collided")
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestIDFrom(ctx); got != a {
		t.Fatalf("RequestIDFrom = %q, want %q", got, a)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Fatalf("RequestIDFrom(empty) = %q, want empty", got)
	}
}
