// Package obs is the observability layer of the system: a dependency-free
// metrics registry (atomic counters, gauges and fixed-bucket latency
// histograms with a Prometheus text exposition) plus the request-identity
// helpers used by structured logging.
//
// Every serving layer registers its metrics against the package-level
// Default registry at init time — the same pattern the runtime uses for
// runtime/metrics — so instrumentation never threads a registry handle
// through deep call stacks (strg.Build, generic index trees). The HTTP
// server exposes the registry at GET /metrics.
//
// Counters and gauges are single atomics; histograms are one atomic per
// bucket plus a CAS-loop float sum. Observing a metric from the parallel
// worker pools is safe and exact.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is an optional label set attached to one metric instance. Label
// values must have bounded cardinality (route patterns, status codes —
// never raw URLs or IDs).
type Labels map[string]string

// LatencyBuckets is the default histogram layout for request and pipeline
// timings, in seconds: roughly exponential from 0.5ms to 10s.
var LatencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// RatioBuckets is the histogram layout for quantities in [0, 1], such as
// per-search pruning ratios.
var RatioBuckets = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}

// Counter is a monotonically increasing metric.
type Counter struct {
	n atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (must be >= 0 for the exposition to stay meaningful).
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a metric that can go up and down (in-flight requests, pool
// occupancy).
type Gauge struct {
	n atomic.Int64
}

// Inc adds 1. Dec subtracts 1. Set replaces the value.
func (g *Gauge) Inc()         { g.n.Add(1) }
func (g *Gauge) Dec()         { g.n.Add(-1) }
func (g *Gauge) Set(v int64)  { g.n.Store(v) }
func (g *Gauge) Add(d int64)  { g.n.Add(d) }
func (g *Gauge) Value() int64 { return g.n.Load() }

// Histogram is a fixed-bucket distribution. Buckets are cumulative upper
// bounds in the Prometheus style; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-updated
	total  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of samples observed.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is one registered instance (a concrete handle plus its identity).
type metric struct {
	labels string // canonical serialized label set, "" for none
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family groups the instances sharing a metric name.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	order   []string
	byLabel map[string]*metric
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. All methods are safe for concurrent use; metric
// handles are get-or-create, so package init order never matters.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-global registry every package registers against.
var Default = NewRegistry()

func canonLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// lookup returns the family for name, creating it with the given type and
// help on first use, and panicking on a type conflict (a programming
// error: two packages claimed one name for different metric kinds).
func (r *Registry) lookup(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byLabel: make(map[string]*metric)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	if f.help == "" {
		f.help = help
	}
	return f
}

func (f *family) instance(labels string) *metric {
	m, ok := f.byLabel[labels]
	if !ok {
		m = &metric{labels: labels}
		f.byLabel[labels] = m
		f.order = append(f.order, labels)
	}
	return m
}

// Counter returns the counter with the given name and labels, creating it
// on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, help, "counter").instance(canonLabels(labels))
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, help, "gauge").instance(canonLabels(labels))
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for pre-existing atomic counters owned by other
// packages (dist.TotalEvals). Re-registering replaces the function.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookup(name, help, "counter").instance(canonLabels(labels)).gf = fn
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookup(name, help, "gauge").instance(canonLabels(labels)).gf = fn
}

// Histogram returns the histogram with the given name, labels and bucket
// upper bounds, creating it on first use. Bounds must be sorted ascending;
// nil means LatencyBuckets. The bounds of the first registration win.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, help, "histogram").instance(canonLabels(labels))
	if m.h == nil {
		m.h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}
	return m.h
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// joinLabels merges an instance's canonical label string with one extra
// label (the histogram "le").
func joinLabels(base, extra string) string {
	switch {
	case base == "" && extra == "":
		return ""
	case base == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + base + "}"
	default:
		return "{" + base + "," + extra + "}"
	}
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), families in registration order and
// instances in creation order — a stable scrape.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, ls := range f.order {
			m := f.byLabel[ls]
			switch {
			case m.h != nil:
				cum := int64(0)
				for i, b := range m.h.bounds {
					cum += m.h.counts[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, joinLabels(ls, `le="`+formatFloat(b)+`"`), cum)
				}
				cum += m.h.counts[len(m.h.bounds)].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, joinLabels(ls, `le="+Inf"`), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, joinLabels(ls, ""), formatFloat(m.h.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, joinLabels(ls, ""), cum)
			case m.gf != nil:
				fmt.Fprintf(w, "%s%s %s\n", f.name, joinLabels(ls, ""), formatFloat(m.gf()))
			case m.c != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, joinLabels(ls, ""), m.c.Value())
			case m.g != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, joinLabels(ls, ""), m.g.Value())
			}
		}
	}
}
