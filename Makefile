# Convenience targets; everything is plain `go` underneath.

.PHONY: build test test-race vet chaos bench bench-json bench-cascade cover experiments experiments-full examples clean

build:
	go build ./...

# Static checks: go vet plus a gofmt drift check (fails listing the files).
vet:
	go vet ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi

# Default test path: static checks, the full suite, a race-detector run
# of the concurrency-heavy packages (distance cascade, index search, HTTP
# middleware/observability), and the crash-recovery fault-injection matrix.
test: vet
	go test ./...
	go test -race ./internal/dist ./internal/index ./internal/server
	$(MAKE) chaos

test-race:
	go test -race ./...

# Crash-recovery fault-injection matrix: every WAL prefix (including
# mid-record tears), torn snapshots, rotation crash states, and bit flips
# in both containers, under the internal/faultfs injection filesystem.
chaos:
	go test -race -count=1 -run 'Crash|EveryPrefix|Durable|BitFlip|Torn|Atomic' \
		./internal/wal ./internal/faultfs ./internal/core

cover:
	go test -cover ./internal/...

bench:
	go test -bench=. -benchmem .

# Worker-sweep benchmarks of the parallel distance engine, as JSON.
bench-json:
	go test -run='^$$' -bench='PairwiseMatrix|STRGBuildParallel|Figure6ClusterBuildParallel|Figure7KNNParallel' -benchmem . \
		| go run ./cmd/benchjson > BENCH_parallel.json

# Filter-and-refine cascade benchmarks (DP cells and per-stage pruning as
# custom /op metrics), as JSON.
bench-cascade:
	go test -run='^$$' -bench='Cascade' -benchmem . \
		| go run ./cmd/benchjson > BENCH_cascade.json

# Regenerate the paper's tables and figures (quick scale: tens of seconds).
experiments:
	go run ./cmd/strg-bench -scale quick

# Paper-sized magnitudes (minutes).
experiments-full:
	go run ./cmd/strg-bench -scale full

examples:
	go run ./examples/quickstart
	go run ./examples/patterns
	go run ./examples/traffic
	go run ./examples/surveillance
	go run ./examples/live

clean:
	go clean ./...
