# Convenience targets; everything is plain `go` underneath.

.PHONY: build test test-race vet chaos chaos-replica chaos-feed bench bench-json bench-cascade bench-approx bench-approx-smoke cover cover-check fuzz-smoke golden golden-update soak experiments experiments-full examples clean

build:
	go build ./...

# Static checks: go vet plus a gofmt drift check (fails listing the files).
vet:
	go vet ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi

# Default test path: static checks, the full suite (includes the golden
# e2e corpus and the short soak), a race-detector run of the
# concurrency-heavy packages (distance cascade, index search and shards,
# HTTP middleware/observability, replication, live feeds), the
# crash-recovery, replication and feed fault-injection matrices, and the
# coverage ratchet.
test: vet
	go test ./...
	go test -race ./internal/dist ./internal/index ./internal/server ./internal/replica ./internal/feed
	$(MAKE) chaos
	$(MAKE) chaos-replica
	$(MAKE) chaos-feed
	$(MAKE) cover-check

test-race:
	go test -race ./...

# Crash-recovery fault-injection matrix: every WAL prefix (including
# mid-record tears), torn snapshots, rotation crash states, and bit flips
# in both containers, under the internal/faultfs injection filesystem.
chaos:
	go test -race -count=1 -run 'Crash|EveryPrefix|Durable|BitFlip|Torn|Atomic' \
		./internal/wal ./internal/faultfs ./internal/core

# Replication fault-injection matrix: every replica-side apply prefix
# under a dying disk, tampered and torn wire batches, a primary killed
# and restarted mid-stream, a resume position rotated off the retained
# WAL, and planted matched-position divergence caught by anti-entropy.
chaos-replica:
	go test -race -count=1 \
		-run 'ReplicaCrash|ReplicaCorrupt|ReplicaTorn|ReplicaResume|ReplicaWALGone|ReplicaAntiEntropy' \
		./internal/replica

# Live-feed fault matrix and concurrency storm: the journal crash matrix
# (sync failures at every point over feed checkpoints), durable restart
# mid-feed with duplicate re-sends, and the feed/subscription soak under
# the race detector (writers, subscribers and churn against one engine,
# with read-your-writes and sequence-monotonicity asserted throughout).
chaos-feed:
	STRG_SOAK_MS=$(STRG_SOAK_MS) go test -race -count=1 \
		-run 'FeedCrashMatrix|FeedDurableRestartResume|FeedSoak' \
		./internal/feed

cover:
	go test -cover ./internal/...

# Coverage ratchet for the packages where a silent regression is most
# dangerous (the index owns query correctness under concurrent ingest, the
# WAL owns durability, dist owns the bit-identity contracts of the
# columnar/batched/quantized kernels, query owns the DSL/planner contract
# behind /v1/query, rtree owns the pruning superset guarantee, embed owns
# the approximate tier's candidate generation and its recall-monotonicity
# contract). Floors sit ~3 points under current coverage (index 94.2%,
# wal 80.4%, dist 97.8%, query 90.4%, rtree 96.0%, embed 90.2%, replica
# 81.5%, feed 83.9% when set); raise them as coverage rises — never lower
# them to make a build pass.
cover-check:
	@status=0; for spec in internal/index:91.0 internal/wal:77.0 internal/dist:94.0 internal/query:86.0 internal/rtree:93.0 internal/embed:87.0 internal/replica:78.0 internal/feed:80.0; do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		pct=$$(go test -cover ./$$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "FAIL: no coverage output for $$pkg"; status=1; continue; fi; \
		if awk -v p="$$pct" -v f="$$floor" 'BEGIN { exit !(p >= f) }'; then \
			echo "ok   $$pkg coverage $$pct% (floor $$floor%)"; \
		else \
			echo "FAIL $$pkg coverage $$pct% dropped below floor $$floor%"; status=1; \
		fi; \
	done; exit $$status

# Fuzz smoke: run each fuzz target for a bounded budget (override with
# FUZZTIME=5m for a long soak). Minimization is capped — an interesting
# input otherwise eats the whole budget shrinking itself.
FUZZTIME ?= 30s
fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzWALScan$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 16x ./internal/wal
	go test -run '^$$' -fuzz '^FuzzSnapshotLoad$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 16x ./internal/core
	go test -run '^$$' -fuzz '^FuzzEGEDKernels$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 16x ./internal/dist
	go test -run '^$$' -fuzz '^FuzzColumnarKernels$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 16x ./internal/dist
	go test -run '^$$' -fuzz '^FuzzParseQuery$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 16x ./internal/query
	go test -run '^$$' -fuzz '^FuzzReplicaBatchDecode$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 16x ./internal/replica
	go test -run '^$$' -fuzz '^FuzzSubscriptionRegister$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 16x ./internal/feed

# Golden end-to-end corpus: deterministic synthetic video in, bit-exact
# query answers out, at shard counts 1, 2 and 4.
golden:
	go test -run TestGoldenE2E -count=1 ./internal/core

# Regenerate the committed corpus after an INTENDED answer change; review
# the diff of internal/core/testdata/golden_e2e.json before committing.
golden-update:
	go test -run TestGoldenE2E -count=1 ./internal/core -args -update-golden

# Concurrency soak under the race detector: mixed ingest / k-NN / range /
# checkpoint goroutines against one shared database. Override the storm
# duration with STRG_SOAK_MS (default here: 5 s; plain `go test` uses a
# shorter 1.5 s budget).
STRG_SOAK_MS ?= 5000
soak:
	STRG_SOAK_MS=$(STRG_SOAK_MS) go test -race -run TestSharedDBSoak -count=1 -v ./internal/core

bench:
	go test -bench=. -benchmem .

# Worker-sweep benchmarks of the parallel distance engine plus the
# columnar kernel benchmarks and the planner micro-benchmark, as JSON,
# then the perf-floor check: batched leaf DP >= 1.5x per-pair everywhere,
# the planner's rtree-assisted select >= 2x the full scan on the ring
# workload in <= 12 allocs/op, and PairwiseMatrix workers=4 >= 2x
# workers=1 on hosts with >= 4 CPUs (a no-regression bound elsewhere).
# The columnar repeat count is high because the check keeps the fastest
# run per name — on a noisy single-core host the min needs several
# samples to converge.
bench-json:
	go test -run='^$$' -bench='PairwiseMatrix|STRGBuildParallel|Figure6ClusterBuildParallel|Figure7KNNParallel' -benchmem . \
		| go run ./cmd/benchjson > BENCH_parallel.json
	go test -run='^$$' -bench='BatchedLeafDP|ColumnarKNNExact' -benchmem -count=8 . \
		| go run ./cmd/benchjson > BENCH_columnar.json
	go test -run='^$$' -bench='PlannerSelect' -benchmem -count=2 . \
		| go run ./cmd/benchjson > BENCH_planner.json
	go run ./cmd/benchjson -check BENCH_parallel.json BENCH_columnar.json BENCH_planner.json

# Approximate-tier experiment grid at the committed million-OG spec:
# bulk-load 1M synthetic OGs with the IVF tier on, sweep nprobe against
# exact ground truth, write BENCH_approx.json, then enforce the
# acceptance gate (>= 5x exact at recall@10 >= 0.95). Takes a few
# minutes; bench-approx-smoke replays a 2k-OG spec in seconds for CI.
bench-approx:
	go run ./cmd/strg-bench -grid internal/experiments/grids/approx-1m.json -grid-out BENCH_approx.json
	go run ./cmd/benchjson -check BENCH_approx.json

bench-approx-smoke:
	go run ./cmd/strg-bench -grid internal/experiments/grids/approx-smoke.json

# Filter-and-refine cascade benchmarks (DP cells and per-stage pruning as
# custom /op metrics), as JSON.
bench-cascade:
	go test -run='^$$' -bench='Cascade' -benchmem . \
		| go run ./cmd/benchjson > BENCH_cascade.json

# Regenerate the paper's tables and figures (quick scale: tens of seconds).
experiments:
	go run ./cmd/strg-bench -scale quick

# Paper-sized magnitudes (minutes).
experiments-full:
	go run ./cmd/strg-bench -scale full

examples:
	go run ./examples/quickstart
	go run ./examples/patterns
	go run ./examples/traffic
	go run ./examples/surveillance
	go run ./examples/live

clean:
	go clean ./...
