# Convenience targets; everything is plain `go` underneath.

.PHONY: build test vet bench bench-json cover experiments experiments-full examples clean

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

test-race:
	go test -race ./...

cover:
	go test -cover ./internal/...

bench:
	go test -bench=. -benchmem .

# Worker-sweep benchmarks of the parallel distance engine, as JSON.
bench-json:
	go test -run='^$$' -bench='PairwiseMatrix|STRGBuildParallel|Figure6ClusterBuildParallel|Figure7KNNParallel' -benchmem . \
		| go run ./cmd/benchjson > BENCH_parallel.json

# Regenerate the paper's tables and figures (quick scale: tens of seconds).
experiments:
	go run ./cmd/strg-bench -scale quick

# Paper-sized magnitudes (minutes).
experiments-full:
	go run ./cmd/strg-bench -scale full

examples:
	go run ./examples/quickstart
	go run ./examples/patterns
	go run ./examples/traffic
	go run ./examples/surveillance
	go run ./examples/live

clean:
	go clean ./...
