module strgindex

go 1.22
