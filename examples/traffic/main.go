// Traffic: cluster discovery on an outdoor stream. Ingest a traffic
// camera's stream, then let BIC choose the number of motion clusters
// (Section 4.2 / Figure 8) and report what each cluster contains — the
// bidirectional lanes and the cross street should emerge as clusters
// without any labels being consulted.
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"log"
	"sort"

	"strgindex/internal/cluster"
	"strgindex/internal/core"
	"strgindex/internal/dist"
	"strgindex/internal/video"
)

func main() {
	profile := video.StreamProfile{
		Name: "Junction", Kind: video.KindTraffic,
		NumObjects: 90, SegmentFrames: 24, ObjectsPerSegment: 3,
	}
	stream, err := video.GenerateStream(profile, 9)
	if err != nil {
		log.Fatal(err)
	}
	db := core.Open(core.DefaultConfig())
	if err := db.IngestStream(stream); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d vehicles -> %d OGs\n\n", stream.NumObjects(), db.Stats().OGs)

	// Pull the indexed OGs back out and scan K = 1..8 with BIC.
	items := db.Index().Items()
	seqs := make([]dist.Sequence, len(items))
	for i, it := range items {
		seqs[i] = it.Seq
	}
	scan, err := cluster.OptimalK(seqs, 1, 8, cluster.Config{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BIC curve (peak = chosen K):")
	for i, k := range scan.Ks {
		marker := ""
		if k == scan.BestK {
			marker = "  <-- chosen"
		}
		fmt.Printf("  K=%d  BIC=%9.1f%s\n", k, scan.BICs[i], marker)
	}

	// Describe each discovered cluster by its members' true motion class
	// (ground truth used only for this printout).
	best := scan.Results[scan.BestK-1]
	fmt.Printf("\ndiscovered %d motion clusters:\n", scan.BestK)
	for k := 0; k < best.K; k++ {
		members := best.Members(k)
		if len(members) == 0 {
			continue
		}
		counts := map[string]int{}
		for _, j := range members {
			counts[stream.Classes[items[j].Payload.Label]]++
		}
		var classes []string
		for c := range counts {
			classes = append(classes, c)
		}
		sort.Slice(classes, func(a, b int) bool { return counts[classes[a]] > counts[classes[b]] })
		fmt.Printf("  cluster %d (%2d OGs):", k, len(members))
		for _, c := range classes {
			fmt.Printf(" %s x%d", c, counts[c])
		}
		fmt.Println()
	}
}
