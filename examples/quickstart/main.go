// Quickstart: generate a tiny surveillance scene, ingest it through the
// full STRG pipeline (RAG → tracking → STRG → decomposition → clustering →
// STRG-Index) and run a similarity query over object motion.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"strgindex/internal/core"
	"strgindex/internal/dist"
	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/video"
)

func main() {
	// A 320x240 scene: a static 3x4 background grid, one person walking
	// east and one walking south, with mild segmentation jitter.
	person := func(shirt graph.Color) []video.PartSpec {
		return []video.PartSpec{
			{Offset: geom.Vec(0, -16), Size: 100, Color: graph.Color{R: 0.85, G: 0.68, B: 0.55}}, // head
			{Offset: geom.Vec(0, 0), Size: 350, Color: shirt},                                    // torso
			{Offset: geom.Vec(0, 17), Size: 250, Color: graph.Color{R: 0.2, G: 0.22, B: 0.28}},   // legs
		}
	}
	scene := video.SceneConfig{
		Name: "demo-seg0", Width: 320, Height: 240, FPS: 12, Frames: 24,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: 0.8, Seed: 7,
		Objects: []video.ObjectSpec{
			{
				Label: "alice", Parts: person(graph.Color{R: 0.8, G: 0.2, B: 0.2}),
				Path:  []geom.Point{geom.Pt(20, 120), geom.Pt(300, 120)},
				Start: 0, End: 24,
			},
			{
				Label: "bob", Parts: person(graph.Color{R: 0.2, G: 0.3, B: 0.8}),
				Path:  []geom.Point{geom.Pt(80, 20), geom.Pt(80, 220)},
				Start: 2, End: 22,
			},
		},
	}
	seg, err := video.Generate(scene)
	if err != nil {
		log.Fatal(err)
	}

	// Ingest: one call runs the whole pipeline.
	db := core.Open(core.DefaultConfig())
	stats, err := db.IngestSegment("demo", seg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d frames: %d temporal edges, %d object graphs, %d background regions\n",
		stats.Frames, stats.TemporalEdges, stats.OGs, stats.BGNodes)

	s := db.Stats()
	fmt.Printf("index: %d OGs in %d clusters; STRG %0.1fKB -> index %0.1fKB\n\n",
		s.OGs, s.Clusters, float64(s.STRGBytes)/1024, float64(s.IndexBytes)/1024)

	// Query: "who moved east through the middle of the frame?"
	query := make(dist.Sequence, 12)
	for i := range query {
		query[i] = dist.Vec{20 + float64(i)*25, 120}
	}
	for rank, m := range db.QueryTrajectory(query, 2) {
		fmt.Printf("match %d: %s (distance %.1f) -> clip %s\n",
			rank+1, m.Record.Label, m.Distance, m.Record.Clip)
	}
}
