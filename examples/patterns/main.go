// Patterns: a distance-function shoot-out on the paper's synthetic
// 48-pattern trajectory data (Section 6.1). Clusters the same noisy data
// with EGED, DTW and LCS under EM and reports error rates — a miniature
// Figure 5 — then demonstrates why the metric EGED_M is the index key:
// the non-metric EGED violates the triangle inequality on the paper's own
// example.
//
//	go run ./examples/patterns
package main

import (
	"fmt"
	"log"

	"strgindex/internal/cluster"
	"strgindex/internal/dist"
	"strgindex/internal/eval"
	"strgindex/internal/synth"
)

func main() {
	fmt.Println("== clustering the synthetic 48-pattern data (miniature Figure 5) ==")
	for _, noise := range []float64{0.05, 0.20} {
		ds, err := synth.Generate(synth.Config{PerPattern: 5, NoisePct: noise, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("noise %2.0f%%:", noise*100)
		for _, tc := range []struct {
			name string
			m    dist.Metric
		}{
			{"EGED", dist.EGED},
			{"DTW", dist.DTW},
			{"LCS", dist.LCSMetric(12)},
		} {
			res, err := cluster.EM(ds.Items, cluster.Config{
				K: ds.NumClusters(), Seed: 3, Distance: tc.m, MaxIter: 25,
			})
			if err != nil {
				log.Fatal(err)
			}
			rate, err := eval.ErrorRate(res.Assignments, ds.Labels)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  EM-%s %5.1f%%", tc.name, rate)
		}
		fmt.Println()
	}

	fmt.Println("\n== EGED vs EGED_M on the paper's Section 3.1 example ==")
	r := dist.Sequence{{0}}
	s := dist.Sequence{{1}, {1}}
	t := dist.Sequence{{2}, {2}, {3}}
	fmt.Printf("non-metric EGED:  d(r,t)=%.0f  d(r,s)+d(s,t)=%.0f+%.0f=%.0f  -> triangle inequality %s\n",
		dist.EGED(r, t), dist.EGED(r, s), dist.EGED(s, t), dist.EGED(r, s)+dist.EGED(s, t),
		verdict(dist.EGED(r, t) <= dist.EGED(r, s)+dist.EGED(s, t)))
	g := dist.Vec{0}
	fmt.Printf("metric EGED_M:    d(r,t)=%.0f  d(r,s)+d(s,t)=%.0f+%.0f=%.0f  -> triangle inequality %s\n",
		dist.EGEDM(r, t, g), dist.EGEDM(r, s, g), dist.EGEDM(s, t, g),
		dist.EGEDM(r, s, g)+dist.EGEDM(s, t, g),
		verdict(dist.EGEDM(r, t, g) <= dist.EGEDM(r, s, g)+dist.EGEDM(s, t, g)))
	fmt.Println("\nthe non-metric EGED clusters best; the metric EGED_M makes a sound index key.")
}

func verdict(holds bool) string {
	if holds {
		return "HOLDS"
	}
	return "VIOLATED"
}
