// Surveillance: the paper's motivating workload. Ingest a multi-segment
// indoor camera stream (Lab profile), persist the database, then answer
// "find clips where something moved like this" queries — including a query
// segment, exactly as Section 5.5 describes (extract BG_q and OG_q from
// the query video, then search).
//
//	go run ./examples/surveillance
package main

import (
	"fmt"
	"log"

	"strgindex/internal/core"
	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/video"
)

func main() {
	// Generate ~30 object appearances across segments of a lab camera.
	profile := video.StreamProfile{
		Name: "LabCam", Kind: video.KindLab,
		NumObjects: 30, SegmentFrames: 24, ObjectsPerSegment: 2,
	}
	stream, err := video.GenerateStream(profile, 42)
	if err != nil {
		log.Fatal(err)
	}
	db := core.Open(core.DefaultConfig())
	if err := db.IngestStream(stream); err != nil {
		log.Fatal(err)
	}
	s := db.Stats()
	fmt.Printf("ingested %d segments -> %d OGs, %d clusters, %d backgrounds\n",
		s.Segments, s.OGs, s.Clusters, s.Roots)
	fmt.Printf("size: decomposed STRG %.0fKB vs STRG-Index %.0fKB (%.0fx smaller)\n\n",
		float64(s.STRGBytes)/1024, float64(s.IndexBytes)/1024,
		float64(s.STRGBytes)/float64(s.IndexBytes))

	// Build a query segment: an unseen person walking a U-turn.
	qseg, err := video.Generate(video.SceneConfig{
		Name: "query", Width: 320, Height: 240, FPS: 12, Frames: 24,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: 0.8, Seed: 777,
		Objects: []video.ObjectSpec{{
			Label: "suspect",
			Parts: []video.PartSpec{
				{Offset: geom.Vec(0, -16), Size: 100, Color: graph.Color{R: 0.85, G: 0.68, B: 0.55}},
				{Offset: geom.Vec(0, 0), Size: 350, Color: graph.Color{R: 0.6, G: 0.6, B: 0.1}},
				{Offset: geom.Vec(0, 17), Size: 250, Color: graph.Color{R: 0.2, G: 0.22, B: 0.28}},
			},
			Path: []geom.Point{
				geom.Pt(16, 90), geom.Pt(272, 90), geom.Pt(272, 110), geom.Pt(16, 110),
			},
			Start: 0, End: 24,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Section 5.5: extract the query's own OGs and background, then k-NN.
	perOG, err := db.QuerySegment(qseg, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query segment produced %d object graph(s)\n", len(perOG))
	classes := stream.Classes
	for i, matches := range perOG {
		fmt.Printf("query OG %d:\n", i)
		for rank, m := range matches {
			fmt.Printf("  %d. %-24s motion=%-16s dist=%8.1f\n",
				rank+1, m.Record.Clip, classes[m.Record.Label], m.Distance)
		}
	}
}
