// Live: streaming surveillance. Frames arrive one at a time; the online
// STRG builder emits finished Object Graphs while the camera keeps
// rolling, and motion predicates fire alerts — "someone crossed the
// restricted zone heading east" — without waiting for the recording to
// end. Finally a multi-location recording is shot-parsed and ingested in
// one call.
//
//	go run ./examples/live
package main

import (
	"fmt"
	"log"
	"math"

	"strgindex/internal/core"
	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/query"
	"strgindex/internal/shot"
	"strgindex/internal/strg"
	"strgindex/internal/video"
)

func person(shirt graph.Color) []video.PartSpec {
	return []video.PartSpec{
		{Offset: geom.Vec(0, -16), Size: 100, Color: graph.Color{R: 0.8, G: 0.65, B: 0.5}},
		{Offset: geom.Vec(0, 0), Size: 350, Color: shirt},
		{Offset: geom.Vec(0, 17), Size: 250, Color: graph.Color{R: 0.25, G: 0.3, B: 0.45}},
	}
}

func main() {
	// --- Part 1: streaming ingest with live alerts -------------------
	seg, err := video.Generate(video.SceneConfig{
		Name: "door-cam", Width: 320, Height: 240, FPS: 12, Frames: 48,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: 0.8, Seed: 21,
		Objects: []video.ObjectSpec{
			{ // crosses the restricted zone early, then leaves
				Label: "intruder", Parts: person(graph.Color{R: 0.9, G: 0.1, B: 0.1}),
				Path:  []geom.Point{geom.Pt(16, 120), geom.Pt(304, 120)},
				Start: 0, End: 20,
			},
			{ // wanders along the wall, never enters the zone
				Label: "guard", Parts: person(graph.Color{R: 0.1, G: 0.3, B: 0.9}),
				Path:  []geom.Point{geom.Pt(40, 220), geom.Pt(280, 220)},
				Start: 8, End: 46,
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	restricted := geom.Rect{Min: geom.Pt(140, 80), Max: geom.Pt(200, 160)}
	alert := query.And(
		query.PassesThrough(restricted),
		query.Eastbound(0.5),
		query.SpeedBetween(3, math.Inf(1)),
	)

	builder := strg.NewOnlineBuilder(strg.DefaultConfig())
	fmt.Println("streaming door-cam frames:")
	for _, frame := range seg.Frames {
		for _, og := range builder.AddFrame(frame) {
			report(og, alert)
		}
	}
	for _, og := range builder.Flush() {
		report(og, alert)
	}

	// --- Part 2: shot-parse a multi-location recording ---------------
	lobby, err := video.Generate(video.SceneConfig{
		Name: "rec", Width: 320, Height: 240, FPS: 12, Frames: 20,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: 0.8, Seed: 22,
		Objects: []video.ObjectSpec{{
			Label: "visitor", Parts: person(graph.Color{R: 0.2, G: 0.8, B: 0.2}),
			Path: []geom.Point{geom.Pt(20, 80), geom.Pt(300, 80)}, Start: 0, End: 20,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	garage, err := video.Generate(video.SceneConfig{
		Name: "rec", Width: 320, Height: 240, FPS: 12, Frames: 20,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: 0.8,
		BackgroundShade: 0.35, Seed: 23,
		Objects: []video.ObjectSpec{{
			Label: "car", Parts: person(graph.Color{R: 0.7, G: 0.7, B: 0.1}),
			Path: []geom.Point{geom.Pt(300, 170), geom.Pt(20, 170)}, Start: 0, End: 20,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	movie, err := video.Concat("evening", lobby, garage)
	if err != nil {
		log.Fatal(err)
	}

	db := core.Open(core.DefaultConfig())
	shots, err := db.IngestVideo("evening", movie, shot.Config{})
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("\nshot-parsed recording: %d shots, %d backgrounds, %d OGs indexed\n",
		shots, st.Roots, st.OGs)
	for _, m := range db.Select(query.Westbound(0.5)) {
		fmt.Printf("westbound object in %s (%s)\n", m.Record.Clip, m.Record.Label)
	}
}

func report(og *strg.OG, alert query.Predicate) {
	status := "ok"
	if alert(og) {
		status = "ALERT: crossed restricted zone"
	}
	fmt.Printf("  finalized %-10s frames %2d..%2d  speed %4.1f px/f  %s\n",
		og.Label, og.StartFrame(), og.EndFrame(), query.MeanSpeed(og), status)
}
