// Package strgindex is a from-scratch Go reproduction of "STRG-Index:
// Spatio-Temporal Region Graph Indexing for Large Video Databases"
// (Lee, Oh, Hwang — SIGMOD 2005).
//
// The implementation lives under internal/: the attributed graph engine
// and matching algorithms (graph), the synthetic segmented-video substrate
// (video), RAG and STRG construction with graph-based tracking (rag,
// strg), the EGED distance family (dist), EM/KM/KHM clustering with BIC
// model selection (cluster), the STRG-Index tree (index), the M-tree
// baseline (mtree), the Section 6.1 synthetic data (synth), evaluation
// measures (eval), the high-level VideoDB API (core) and the experiment
// runners regenerating every table and figure (experiments).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced evaluation.
package strgindex
