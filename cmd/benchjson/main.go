// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark line:
//
//	go test -bench=PairwiseMatrix -benchmem . | benchjson > bench.json
//
// Each object carries the benchmark name (with any /workers=N suffix split
// out), iteration count, ns/op and — when -benchmem was set — B/op and
// allocs/op. Custom units reported via testing.B.ReportMetric (for example
// dp_cells/op from the distance-cascade benchmarks) land in an "extra"
// map keyed by unit. Non-benchmark lines pass through to stderr so
// failures stay visible.
//
// With -check, the command instead reads previously written JSON files
// and enforces the perf acceptance floors (see checkFiles), exiting
// non-zero on a regression:
//
//	benchjson -check BENCH_parallel.json BENCH_columnar.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Point is one parsed benchmark measurement.
type Point struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	// Extra holds custom ReportMetric units (e.g. "dp_cells/op").
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	check := flag.Bool("check", false,
		"read JSON files (args) and enforce the perf floors instead of converting stdin")
	flag.Parse()
	if *check {
		if err := checkFiles(flag.Args()); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson -check: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var points []Point
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if p, ok := parseLine(line); ok {
			points = append(points, p)
		} else {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(points); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// checkFiles loads every benchmark point from the given JSON files and
// enforces the perf acceptance floors. Each floor group applies only when
// its benchmark family appears in the input — callers check exactly the
// files a target regenerated — but at least one group must match, so a
// typo'd file set fails instead of passing vacuously:
//
//   - BenchmarkPairwiseMatrix: workers=4 must run >= 2x faster than
//     workers=1. Scaling floors are only meaningful with cores to scale
//     onto, so on hosts with fewer than 4 CPUs the floor relaxes to a
//     no-regression bound (workers=4 no more than 25% slower than
//     workers=1 — oversubscription must stay near-free) and a note says
//     so.
//   - BenchmarkBatchedLeafDP: the batched columnar kernel must be >= 1.5x
//     faster than the per-pair kernel. This is a per-core property of the
//     kernels, so it is enforced everywhere.
//   - BenchmarkPlannerSelect: the planner's rtree-assisted spatial select
//     must run >= 2x faster than the forced full scan on the ring
//     workload, in at most 12 allocs/op — the query engine's pruning
//     promise plus the alloc-shaving ratchet, single-threaded, so both
//     are enforced everywhere.
//   - BenchmarkApproxGrid: the fastest approx operating point whose
//     recall@k is >= 0.95 must run >= 5x faster than the exact baseline
//     over the same corpus — the approximate tier's acceptance gate.
//
// When the input files carry repeated measurements of the same benchmark
// (go test -count=N), the fastest run wins.
func checkFiles(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("no JSON files given")
	}
	byName := make(map[string]Point)
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var pts []Point
		if err := json.Unmarshal(raw, &pts); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, p := range pts {
			// Benchmarks may be run with -count>1; keep the fastest run per
			// name — the minimum is the least-noisy estimator of the true
			// cost on a busy host.
			if prev, ok := byName[p.Name]; !ok || p.NsPerOp < prev.NsPerOp {
				byName[p.Name] = p
			}
		}
	}
	has := func(names ...string) bool {
		for _, n := range names {
			if _, ok := byName[n]; ok {
				return true
			}
		}
		return false
	}
	ratio := func(slow, fast string) (float64, error) {
		s, okS := byName[slow]
		f, okF := byName[fast]
		if !okS || !okF {
			return 0, fmt.Errorf("missing benchmark entries %q and/or %q", slow, fast)
		}
		if f.NsPerOp <= 0 {
			return 0, fmt.Errorf("%q has non-positive ns/op", fast)
		}
		return s.NsPerOp / f.NsPerOp, nil
	}
	groups := 0

	if has("BenchmarkPairwiseMatrix/workers=1", "BenchmarkPairwiseMatrix/workers=4") {
		groups++
		r, err := ratio("BenchmarkPairwiseMatrix/workers=1", "BenchmarkPairwiseMatrix/workers=4")
		if err != nil {
			return err
		}
		if runtime.NumCPU() >= 4 {
			if r < 2.0 {
				return fmt.Errorf("PairwiseMatrix workers=4 is only %.2fx workers=1 (floor 2.0x on a %d-CPU host)",
					r, runtime.NumCPU())
			}
			fmt.Printf("ok   PairwiseMatrix workers=4 speedup %.2fx (floor 2.0x)\n", r)
		} else {
			// 1/r is the slowdown of workers=4 relative to workers=1.
			if r < 1/1.25 {
				return fmt.Errorf("PairwiseMatrix workers=4 is %.2fx slower than workers=1 on a %d-CPU host (no-regression bound 1.25x)",
					1/r, runtime.NumCPU())
			}
			fmt.Printf("note PairwiseMatrix scaling floor skipped: host has %d CPU(s); no-regression bound held (%.2fx)\n",
				runtime.NumCPU(), r)
		}
	}

	if has("BenchmarkBatchedLeafDP/kernel=perpair", "BenchmarkBatchedLeafDP/kernel=batched") {
		groups++
		r, err := ratio("BenchmarkBatchedLeafDP/kernel=perpair", "BenchmarkBatchedLeafDP/kernel=batched")
		if err != nil {
			return err
		}
		if r < 1.5 {
			return fmt.Errorf("batched leaf DP is only %.2fx the per-pair kernel (floor 1.5x)", r)
		}
		fmt.Printf("ok   batched leaf DP speedup %.2fx (floor 1.5x)\n", r)
	}

	if has("BenchmarkPlannerSelect/access=scan", "BenchmarkPlannerSelect/access=rtree") {
		groups++
		r, err := ratio("BenchmarkPlannerSelect/access=scan", "BenchmarkPlannerSelect/access=rtree")
		if err != nil {
			return err
		}
		if r < 2.0 {
			return fmt.Errorf("planner rtree-assisted select is only %.2fx the full scan (floor 2.0x)", r)
		}
		rt := byName["BenchmarkPlannerSelect/access=rtree"]
		if rt.AllocsPerOp == nil {
			return fmt.Errorf("planner rtree point carries no allocs/op (run with -benchmem)")
		}
		if *rt.AllocsPerOp > 12 {
			return fmt.Errorf("planner rtree-assisted select allocates %d allocs/op (ceiling 12)", *rt.AllocsPerOp)
		}
		fmt.Printf("ok   planner rtree-assisted select speedup %.2fx (floor 2.0x), %d allocs/op (ceiling 12)\n",
			r, *rt.AllocsPerOp)
	}

	if has("BenchmarkApproxGrid/mode=exact") {
		groups++
		if err := checkApproxGrid(byName); err != nil {
			return err
		}
	}

	if groups == 0 {
		return fmt.Errorf("no known benchmark family found in the given files")
	}
	return nil
}

// checkApproxGrid enforces the approximate tier's acceptance gate: among
// the swept probe widths, the fastest operating point whose recall@k is
// >= approxRecallFloor must beat the exact baseline by >= approxSpeedupFloor.
func checkApproxGrid(byName map[string]Point) error {
	const (
		approxRecallFloor  = 0.95
		approxSpeedupFloor = 5.0
	)
	exact := byName["BenchmarkApproxGrid/mode=exact"]
	if exact.NsPerOp <= 0 {
		return fmt.Errorf("ApproxGrid exact baseline has non-positive ns/op")
	}
	recallOf := func(p Point) (float64, bool) {
		for unit, v := range p.Extra {
			if strings.HasPrefix(unit, "recall@") {
				return v, true
			}
		}
		return 0, false
	}
	var best *Point
	var bestRecall float64
	points := 0
	for name, p := range byName {
		if !strings.HasPrefix(name, "BenchmarkApproxGrid/mode=approx/") {
			continue
		}
		points++
		rec, ok := recallOf(p)
		if !ok {
			return fmt.Errorf("%s carries no recall@k metric", name)
		}
		if rec < approxRecallFloor {
			continue
		}
		if best == nil || p.NsPerOp < best.NsPerOp {
			q := p
			best, bestRecall = &q, rec
		}
	}
	if points == 0 {
		return fmt.Errorf("ApproxGrid has an exact baseline but no approx points")
	}
	if best == nil {
		return fmt.Errorf("no ApproxGrid operating point reaches recall >= %.2f", approxRecallFloor)
	}
	speedup := exact.NsPerOp / best.NsPerOp
	if speedup < approxSpeedupFloor {
		return fmt.Errorf("best ApproxGrid point at recall >= %.2f (%s, recall %.3f) is only %.2fx exact (floor %.1fx)",
			approxRecallFloor, best.Name, bestRecall, speedup, approxSpeedupFloor)
	}
	fmt.Printf("ok   approx tier %s: %.2fx exact at recall %.3f (floors %.1fx, %.2f)\n",
		best.Name, speedup, bestRecall, approxSpeedupFloor, approxRecallFloor)
	return nil
}

// parseLine handles the standard benchmark format:
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   10 allocs/op
func parseLine(line string) (Point, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Point{}, false
	}
	name := fields[0]
	// Strip the trailing -GOMAXPROCS marker.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Point{}, false
	}
	p := Point{Name: name, Iterations: iters}
	// A /workers=N sub-benchmark segment becomes its own field, keeping
	// the sweep easy to plot.
	for _, seg := range strings.Split(name, "/") {
		if v, ok := strings.CutPrefix(seg, "workers="); ok {
			if w, err := strconv.Atoi(v); err == nil {
				p.Workers = w
			}
		}
	}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			p.NsPerOp = val
			ok = true
		case "B/op":
			b := int64(val)
			p.BytesPerOp = &b
		case "allocs/op":
			a := int64(val)
			p.AllocsPerOp = &a
		default:
			// Any other "<value> <unit>/op" pair is a custom metric.
			if strings.HasSuffix(fields[i+1], "/op") {
				if p.Extra == nil {
					p.Extra = make(map[string]float64)
				}
				p.Extra[fields[i+1]] = val
			}
		}
	}
	return p, ok
}
