// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark line:
//
//	go test -bench=PairwiseMatrix -benchmem . | benchjson > bench.json
//
// Each object carries the benchmark name (with any /workers=N suffix split
// out), iteration count, ns/op and — when -benchmem was set — B/op and
// allocs/op. Custom units reported via testing.B.ReportMetric (for example
// dp_cells/op from the distance-cascade benchmarks) land in an "extra"
// map keyed by unit. Non-benchmark lines pass through to stderr so
// failures stay visible.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Point is one parsed benchmark measurement.
type Point struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	// Extra holds custom ReportMetric units (e.g. "dp_cells/op").
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	var points []Point
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if p, ok := parseLine(line); ok {
			points = append(points, p)
		} else {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(points); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine handles the standard benchmark format:
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   10 allocs/op
func parseLine(line string) (Point, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Point{}, false
	}
	name := fields[0]
	// Strip the trailing -GOMAXPROCS marker.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Point{}, false
	}
	p := Point{Name: name, Iterations: iters}
	// A /workers=N sub-benchmark segment becomes its own field, keeping
	// the sweep easy to plot.
	for _, seg := range strings.Split(name, "/") {
		if v, ok := strings.CutPrefix(seg, "workers="); ok {
			if w, err := strconv.Atoi(v); err == nil {
				p.Workers = w
			}
		}
	}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			p.NsPerOp = val
			ok = true
		case "B/op":
			b := int64(val)
			p.BytesPerOp = &b
		case "allocs/op":
			a := int64(val)
			p.AllocsPerOp = &a
		default:
			// Any other "<value> <unit>/op" pair is a custom metric.
			if strings.HasSuffix(fields[i+1], "/op") {
				if p.Extra == nil {
					p.Extra = make(map[string]float64)
				}
				p.Extra[fields[i+1]] = val
			}
		}
	}
	return p, ok
}
