package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/video"
)

// TestMain doubles as the server entry point: the lifecycle tests re-exec
// this test binary with STRG_SERVER_MAIN=1 to get a real process they can
// signal, so graceful shutdown is tested against the actual main loop.
func TestMain(m *testing.M) {
	if os.Getenv("STRG_SERVER_MAIN") == "1" {
		os.Args = append([]string{"strg-server"}, strings.Fields(os.Getenv("STRG_SERVER_ARGS"))...)
		flag.CommandLine = flag.NewFlagSet("strg-server", flag.ExitOnError)
		os.Exit(run())
	}
	os.Exit(m.Run())
}

// proc is a re-exec'd strg-server under test.
type proc struct {
	cmd  *exec.Cmd
	addr string

	mu    sync.Mutex
	lines []string
}

var listenRE = regexp.MustCompile(`msg=listening addr=(\S+)`)

func startServer(t *testing.T, args string) *proc {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "STRG_SERVER_MAIN=1", "STRG_SERVER_ARGS="+args)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd}
	addrc := make(chan string, 1)
	go func() {
		buf := make([]byte, 4096)
		var pending string
		for {
			n, err := stderr.Read(buf)
			pending += string(buf[:n])
			for {
				i := strings.IndexByte(pending, '\n')
				if i < 0 {
					break
				}
				line := pending[:i]
				pending = pending[i+1:]
				p.mu.Lock()
				p.lines = append(p.lines, line)
				p.mu.Unlock()
				if m := listenRE.FindStringSubmatch(line); m != nil {
					select {
					case addrc <- m[1]:
					default:
					}
				}
			}
			if err != nil {
				return
			}
		}
	}()
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			_ = p.cmd.Process.Kill()
			_, _ = p.cmd.Process.Wait()
		}
		if t.Failed() {
			p.mu.Lock()
			t.Logf("server output:\n%s", strings.Join(p.lines, "\n"))
			p.mu.Unlock()
		}
	})
	select {
	case p.addr = <-addrc:
	case <-time.After(15 * time.Second):
		t.Fatal("server never logged its listen address")
	}
	return p
}

func (p *proc) url(path string) string { return "http://" + p.addr + path }

func (p *proc) sigterm(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
}

// wait blocks for process exit and returns whether it exited cleanly.
func (p *proc) wait(t *testing.T, timeout time.Duration) bool {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err == nil
	case <-time.After(timeout):
		_ = p.cmd.Process.Kill()
		t.Fatalf("server did not exit within %s", timeout)
		return false
	}
}

func waitReady(t *testing.T, p *proc) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(p.url("/readyz"))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

// testSegmentBody is a marshaled POST /v1/segments body with one walker.
func testSegmentBody(t *testing.T, name string, y float64, seed int64) []byte {
	t.Helper()
	seg, err := video.Generate(video.SceneConfig{
		Name: name, Width: 320, Height: 240, FPS: 12, Frames: 20,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: 0.8, Seed: seed,
		Objects: []video.ObjectSpec{{
			Label: "walker",
			Parts: []video.PartSpec{
				{Offset: geom.Vec(0, -16), Size: 100, Color: graph.Color{R: 0.8, G: 0.65, B: 0.5}},
				{Offset: geom.Vec(0, 0), Size: 350, Color: graph.Color{R: 0.7, G: 0.2, B: 0.4}},
				{Offset: geom.Vec(0, 17), Size: 250, Color: graph.Color{R: 0.2, G: 0.3, B: 0.5}},
			},
			Path:  []geom.Point{geom.Pt(16, y), geom.Pt(304, y)},
			Start: 0, End: 20,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{"stream": "cam0", "segment": seg})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func ingestOK(t *testing.T, p *proc, body []byte) {
	t.Helper()
	resp, err := http.Post(p.url("/v1/segments"), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest status %d: %s", resp.StatusCode, out)
	}
}

func segmentCount(t *testing.T, p *proc) int {
	t.Helper()
	resp, err := http.Get(p.url("/v1/stats"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct{ Segments int }
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Segments
}

// gatedReader serves the first chunk immediately, then blocks until
// released — an in-flight request held open across a SIGTERM.
type gatedReader struct {
	first   *bytes.Reader
	rest    *bytes.Reader
	release chan struct{}
	opened  bool
}

func (g *gatedReader) Read(b []byte) (int, error) {
	if g.first.Len() > 0 {
		return g.first.Read(b)
	}
	if !g.opened {
		<-g.release
		g.opened = true
	}
	return g.rest.Read(b)
}

// TestGracefulShutdownRecovers is the full durability lifecycle: ingest,
// SIGTERM with a request in flight (it must complete during the drain),
// clean exit, then a fresh process recovers every acknowledged segment —
// including the one that was in flight when the signal arrived.
func TestGracefulShutdownRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec lifecycle test")
	}
	dir := t.TempDir()
	p := startServer(t, "-addr 127.0.0.1:0 -data-dir "+dir+" -grace 30s")
	waitReady(t, p)

	ingestOK(t, p, testSegmentBody(t, "seg-a", 60, 1))
	ingestOK(t, p, testSegmentBody(t, "seg-b", 120, 2))

	// Park an ingest mid-body, then signal.
	body := testSegmentBody(t, "seg-c", 180, 3)
	g := &gatedReader{
		first:   bytes.NewReader(body[:len(body)/2]),
		rest:    bytes.NewReader(body[len(body)/2:]),
		release: make(chan struct{}),
	}
	req, err := http.NewRequest("POST", p.url("/v1/segments"), g)
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = int64(len(body))
	type result struct {
		status int
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			resc <- result{err: err}
			return
		}
		resp.Body.Close()
		resc <- result{status: resp.StatusCode}
	}()
	// Make sure the server has the request before the signal lands.
	time.Sleep(200 * time.Millisecond)
	p.sigterm(t)
	time.Sleep(200 * time.Millisecond)
	close(g.release)

	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request died during drain: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight request status %d, want 200", res.status)
	}
	if !p.wait(t, 30*time.Second) {
		t.Fatal("server exited non-zero after graceful shutdown")
	}

	// A new process on the same directory recovers all three segments.
	p2 := startServer(t, "-addr 127.0.0.1:0 -data-dir "+dir+" -grace 10s")
	waitReady(t, p2)
	if got := segmentCount(t, p2); got != 3 {
		t.Errorf("recovered %d segments, want 3 (two acked + one drained)", got)
	}
	p2.sigterm(t)
	if !p2.wait(t, 30*time.Second) {
		t.Fatal("second server exited non-zero")
	}
}

// TestSecondSIGTERMForcesExit: with a request stuck in flight and a long
// grace, the first SIGTERM drains forever — the second one must kill the
// process immediately.
func TestSecondSIGTERMForcesExit(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec lifecycle test")
	}
	p := startServer(t, "-addr 127.0.0.1:0 -data-dir "+t.TempDir()+" -grace 300s")
	waitReady(t, p)

	// Wedge a request: body never completes, so the drain cannot finish.
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", p.url("/v1/segments"), pr)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	if _, err := fmt.Fprint(pw, `{"stream":"cam0"`); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)

	p.sigterm(t)
	time.Sleep(300 * time.Millisecond)
	// Still draining (the wedged request holds it open) — force it.
	p.sigterm(t)

	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("forced exit reported success; want non-zero (signal) exit")
		}
	case <-time.After(10 * time.Second):
		_ = p.cmd.Process.Kill()
		t.Fatal("second SIGTERM did not force exit")
	}
	pw.Close()
}
