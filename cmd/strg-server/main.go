// Command strg-server serves a video database over HTTP (JSON API).
//
//	strg-server -addr :8080 [-db db.gob] [-pprof]
//
// Endpoints:
//
//	POST /v1/segments       ingest a segmented video segment
//	POST /v1/query/knn      motion-similarity search
//	POST /v1/query/range    radius search
//	POST /v1/query/select   predicate search (region / heading / speed / U-turn)
//	GET  /v1/stats          database statistics
//	GET  /healthz           liveness probe
//	GET  /metrics           Prometheus text exposition
//
// With -pprof, net/http/pprof profiling handlers are mounted under
// /debug/pprof/. SIGINT/SIGTERM trigger a graceful shutdown: the listener
// stops accepting, in-flight requests get up to 10s to drain.
//
// See internal/server for the request formats.
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strgindex/internal/core"
	"strgindex/internal/obs"
	"strgindex/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dbPath := flag.String("db", "", "optional database file written by strg-ingest to preload")
	workers := flag.Int("workers", 0, "worker budget for ingest and search (0 = one per CPU, 1 = sequential); responses are identical at every setting")
	distCache := flag.Int("dist-cache", -1, "distance cache capacity in entries (0 disables, negative = built-in default); results are identical either way")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	flag.Parse()

	logger := obs.NewLogger()
	cfg := core.DefaultConfig()
	cfg.Concurrency = *workers
	cfg.DistCacheSize = *distCache
	opts := server.Options{Logger: logger, EnablePprof: *pprof}

	srv := server.NewWith(cfg, opts)
	if *dbPath != "" {
		// Preload by replaying into the shared DB via core.Load.
		f, err := os.Open(*dbPath)
		if err != nil {
			logger.Error("open database", "err", err)
			os.Exit(1)
		}
		loaded, err := server.NewFromReaderWith(f, cfg, opts)
		f.Close()
		if err != nil {
			logger.Error("load database", "path", *dbPath, "err", err)
			os.Exit(1)
		}
		srv = loaded
		st := srv.DB().Stats()
		logger.Info("database loaded", "path", *dbPath, "ogs", st.OGs, "clusters", st.Clusters)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "pprof", *pprof)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Error("serve", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain: stop accepting, give in-flight requests 10s to finish.
	logger.Info("shutting down", "grace", "10s")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown", "err", err)
		os.Exit(1)
	}
	logger.Info("bye")
}
