// Command strg-server serves a video database over HTTP (JSON API).
//
//	strg-server -addr :8080 [-data-dir ./data] [-db db.gob] [-shards 4] [-pprof]
//
// Endpoints:
//
//	POST /v1/segments       ingest a segmented video segment
//	POST /v1/query/knn      motion-similarity search
//	POST /v1/query/range    radius search
//	POST /v1/query/select   predicate search (region / heading / speed / U-turn)
//	GET  /v1/stats          database statistics
//	GET  /healthz           liveness probe (200 while the process runs)
//	GET  /readyz            readiness probe (503 until recovery completes,
//	                        and again while shutdown drains)
//	GET  /metrics           Prometheus text exposition
//
// With -feeds (requires -data-dir) the live-feed surface is mounted:
// POST /v1/feeds/{id}/frames accepts newline-delimited frame batches
// (crash-safe journals per feed, epoch commits through the ordinary
// ingest path), POST /v1/subscriptions registers standing queries, and
// GET /v1/subscriptions/{id}/events streams their matches over
// Server-Sent Events. See internal/feed and DESIGN.md §16.
//
// With -data-dir the database is durable: every ingest is written to a
// checksummed write-ahead log before it is acknowledged, and on boot the
// server recovers by loading the last snapshot and replaying the log —
// the listener answers probes during replay, but /readyz stays 503 until
// the database is consistent.
//
// Admission control sheds load before it hurts: at most -max-inflight
// API requests run concurrently, excess requests wait up to
// -queue-timeout and are then refused with 429 + Retry-After, and every
// request carries a -request-timeout server-side deadline (504 when
// exceeded). Probe and metrics endpoints are exempt.
//
// With -data-dir (and no -replicate-from) the server is also a
// replication primary: read replicas register, fetch a bootstrap
// snapshot and tail the WAL over /v1/replication/*. With -replicate-from
// the server is a read replica of the given primary: ingest answers 403,
// queries serve from the locally replicated state, and /readyz answers
// 503 while replication lag exceeds -replica-lag-max or the local state
// needs a re-bootstrap. A replica that detects divergence (or falls off
// the primary's retained WAL) exits non-zero after persisting a RESYNC
// marker — restarting it wipes the local state and bootstraps fresh.
//
// With -pprof, net/http/pprof profiling handlers are mounted under
// /debug/pprof/. SIGINT/SIGTERM trigger a graceful shutdown: readiness
// drops, the listener stops accepting, in-flight requests get -grace to
// drain, and a durable database writes a final checkpoint so the next
// boot loads one snapshot instead of replaying the log. A second signal
// forces immediate exit.
//
// See internal/server for the request formats.
package main

import (
	"context"
	"errors"
	"flag"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"strgindex/internal/core"
	"strgindex/internal/feed"
	"strgindex/internal/obs"
	"strgindex/internal/replica"
	"strgindex/internal/server"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data-dir", "", "durable data directory (write-ahead log + snapshots); empty = in-memory only")
	dbPath := flag.String("db", "", "optional database file written by strg-ingest to preload (in-memory mode)")
	workers := flag.Int("workers", 0, "worker budget for ingest and search (0 = one per CPU, 1 = sequential); responses are identical at every setting")
	shards := flag.Int("shards", 4, "copy-on-write index shard count (1-256); queries never block on ingest, and responses are identical at every setting")
	asyncSplit := flag.Bool("async-split", true, "evaluate BIC cluster splits on background goroutines instead of the ingest path")
	columnar := flag.Bool("columnar", true, "store leaf sequences in contiguous column blocks with batched DP and the quantized prune tier; results are bit-identical either way (ablation knob)")
	searchBatch := flag.Int("search-batch", 0, "leaves per exact-kNN scheduling round (0 = one per worker); results are identical at every setting")
	distCache := flag.Int("dist-cache", -1, "distance cache capacity in entries (0 disables, negative = built-in default); results are identical either way")
	approx := flag.Bool("approx", false, "build the approximate similarity tier (IVF over deterministic OG embeddings); queries opt in per-request with \"mode\": \"approx\" — default paths are untouched")
	nlists := flag.Int("nlists", 0, "IVF inverted-list count for -approx (0 = built-in default)")
	nprobe := flag.Int("nprobe", 0, "default probe count for approximate queries that do not set one (0 = ceil(sqrt(nlists)))")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	grace := flag.Duration("grace", 10*time.Second, "shutdown drain budget for in-flight requests")
	maxInFlight := flag.Int("max-inflight", 256, "maximum concurrently served API requests (0 = unlimited); excess requests are shed with 429")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "how long a request may wait for an in-flight slot before 429")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "server-side deadline per API request (0 = none)")
	feeds := flag.Bool("feeds", false, "mount the live-feed and standing-query endpoints (/v1/feeds/*, /v1/subscriptions/*); requires -data-dir, incompatible with -replicate-from")
	replicateFrom := flag.String("replicate-from", "", "base URL of a primary to replicate from (e.g. http://primary:8080); makes this server a read replica (requires -data-dir)")
	replicaID := flag.String("replica-id", "", "identity in the primary's replica registry (default: hostname; set explicitly when running several replicas per host)")
	replicaLagMax := flag.Int64("replica-lag-max", 0, "replication lag in committed WAL bytes past which /readyz answers 503 (0 = 64 MiB, negative = unbounded)")
	flag.Parse()

	logger := obs.NewLogger()
	if *dataDir != "" && *dbPath != "" {
		logger.Error("-data-dir and -db are mutually exclusive (put the ingested database in the data dir instead)")
		return 2
	}
	if *replicateFrom != "" && *dataDir == "" {
		logger.Error("-replicate-from requires -data-dir (the replica keeps a durable local copy)")
		return 2
	}
	if *feeds && *dataDir == "" {
		logger.Error("-feeds requires -data-dir (feed journals must survive restarts)")
		return 2
	}
	if *feeds && *replicateFrom != "" {
		logger.Error("-feeds is incompatible with -replicate-from (a read replica cannot ingest)")
		return 2
	}
	cfg := core.DefaultConfig()
	cfg.Concurrency = *workers
	cfg.DistCacheSize = *distCache
	cfg.Index.Shards = *shards
	cfg.Index.AsyncSplit = *asyncSplit
	cfg.Index.DisableColumnar = !*columnar
	cfg.Index.SearchBatch = *searchBatch
	cfg.Approx = core.ApproxConfig{Enabled: *approx, NLists: *nlists, NProbe: *nprobe}
	opts := server.Options{
		Logger:         logger,
		EnablePprof:    *pprof,
		MaxInFlight:    *maxInFlight,
		QueueTimeout:   *queueTimeout,
		RequestTimeout: *requestTimeout,
		StartUnready:   true,
	}

	// Bind before recovery so orchestrator probes reach us immediately:
	// /healthz says the process lives, /readyz says not yet.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen", "addr", *addr, "err", err)
		return 1
	}
	logger.Info("listening", "addr", ln.Addr().String(), "pprof", *pprof)

	var handler atomic.Pointer[http.Handler]
	boot := http.Handler(http.HandlerFunc(recoveringHandler))
	handler.Store(&boot)
	hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*handler.Load()).ServeHTTP(w, r)
	})}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var srv *server.Server
	var db *core.SharedDB
	var rep *replica.Replica
	var feedSvc *feed.Service
	switch {
	case *replicateFrom != "":
		id := *replicaID
		if id == "" {
			if id, _ = os.Hostname(); id == "" {
				id = "replica"
			}
		}
		rep, err = replica.Open(ctx, replica.Config{
			Primary: *replicateFrom,
			ID:      id,
			Dir:     *dataDir,
			DB:      cfg,
			LagMax:  *replicaLagMax,
			Logger:  logger,
		})
		if err != nil {
			logger.Error("replica bootstrap failed", "primary", *replicateFrom, "err", err)
			return 1
		}
		db = rep.DB()
		logger.Info("replica recovered", "primary", *replicateFrom, "id", id, "pos", db.ReplicaPos().String())
		opts.Replica = rep
		srv = server.NewShared(db, opts)
	case *dataDir != "":
		shared, rec, err := core.OpenDurable(cfg, core.Durability{Dir: *dataDir})
		if err != nil {
			logger.Error("recovery failed", "dir", *dataDir, "err", err)
			return 1
		}
		db = shared
		logger.Info("recovered",
			"dir", *dataDir,
			"snapshot", rec.SnapshotLoaded,
			"wal_logs", rec.ReplayedLogs,
			"wal_records", rec.ReplayedRecords,
			"torn_tail", rec.TornTail,
			"duration_ms", float64(rec.Duration.Nanoseconds())/1e6)
		prim, perr := replica.NewPrimary(shared, replica.PrimaryOptions{})
		if perr != nil {
			logger.Error("replication primary", "err", perr)
			return 1
		}
		defer prim.Close()
		opts.Replication = prim
		if *feeds {
			feedSvc, err = feed.Open(feed.Options{
				Dir:  filepath.Join(*dataDir, "feeds"),
				DB:   shared,
				STRG: &cfg.STRG,
			})
			if err != nil {
				logger.Error("feed recovery failed", "dir", filepath.Join(*dataDir, "feeds"), "err", err)
				return 1
			}
			opts.Feeds = feedSvc
			logger.Info("feeds recovered", "feeds", len(feedSvc.Feeds()))
		}
		srv = server.NewShared(shared, opts)
	case *dbPath != "":
		f, err := os.Open(*dbPath)
		if err != nil {
			logger.Error("open database", "err", err)
			return 1
		}
		srv, err = server.NewFromReaderWith(f, cfg, opts)
		f.Close()
		if err != nil {
			logger.Error("load database", "path", *dbPath, "err", err)
			return 1
		}
	default:
		srv = server.NewWith(cfg, opts)
	}
	live := http.Handler(srv)
	handler.Store(&live)
	srv.SetReady(true)
	st := srv.DB().Stats()
	logger.Info("ready", "segments", st.Segments, "ogs", st.OGs, "clusters", st.Clusters, "shards", st.Shards)

	// The replication loop runs alongside the listener; repc stays nil
	// (and its case never fires) on a primary.
	var repc chan error
	if rep != nil {
		repc = make(chan error, 1)
		go func() { repc <- rep.Run(ctx) }()
	}

	select {
	case err := <-errc:
		logger.Error("serve", "err", err)
		return 1
	case err := <-repc:
		if !errors.Is(err, context.Canceled) {
			if errors.Is(err, replica.ErrResyncNeeded) {
				// The RESYNC marker is on disk: exit non-zero so a
				// supervisor restarts us, and the next Open wipes and
				// re-bootstraps.
				logger.Error("replica requires re-bootstrap; restart to repair", "err", err)
				return 1
			}
			logger.Error("replication loop exited", "err", err)
			return 1
		}
		repc = nil // canceled alongside the signal context: graceful shutdown
	case <-ctx.Done():
	}
	// Unregister the handler: a second SIGTERM takes the default
	// disposition and kills the process outright.
	stop()

	srv.SetReady(false)
	logger.Info("shutting down", "grace", grace.String())
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown", "err", err)
	}
	switch {
	case rep != nil:
		// Wait for the replication loop to notice the canceled context so
		// it cannot race the final checkpoint.
		if repc != nil {
			<-repc
		}
		db.QuiesceIndex()
		if err := rep.Close(); err != nil {
			logger.Error("closing replica", "err", err)
			return 1
		}
		logger.Info("replica closed")
	case db != nil:
		// The feed service closes first: it detaches the commit hook,
		// drains the standing-query engine and seals every journal (frames
		// pending an epoch stay journaled and recover on the next boot).
		if feedSvc != nil {
			if err := feedSvc.Close(); err != nil {
				logger.Warn("closing feeds", "err", err)
			}
			logger.Info("feeds closed")
		}
		// Settle in-flight asynchronous splits, then fold the log into a
		// final snapshot so the next boot is a single file load; failure is
		// not fatal — the WAL already has everything.
		db.QuiesceIndex()
		if err := db.Checkpoint(); err != nil {
			logger.Warn("final checkpoint", "err", err)
		}
		if err := db.Close(); err != nil {
			logger.Error("closing database", "err", err)
			return 1
		}
		logger.Info("database closed")
	}
	logger.Info("bye")
	return 0
}

// recoveringHandler answers probes while recovery replays the log: the
// process is alive but not ready, and API requests get a clean 503.
func recoveringHandler(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	_, _ = w.Write([]byte(`{"error":{"code":"unavailable","message":"recovering"}}` + "\n"))
}
