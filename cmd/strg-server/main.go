// Command strg-server serves a video database over HTTP (JSON API).
//
//	strg-server -addr :8080 [-db db.gob]
//
// Endpoints:
//
//	POST /v1/segments       ingest a segmented video segment
//	POST /v1/query/knn      motion-similarity search
//	POST /v1/query/range    radius search
//	POST /v1/query/select   predicate search (region / heading / speed / U-turn)
//	GET  /v1/stats          database statistics
//
// See internal/server for the request formats.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"strgindex/internal/core"
	"strgindex/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dbPath := flag.String("db", "", "optional database file written by strg-ingest to preload")
	workers := flag.Int("workers", 0, "worker budget for ingest and search (0 = one per CPU, 1 = sequential); responses are identical at every setting")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Concurrency = *workers
	srv := server.New(cfg)
	if *dbPath != "" {
		// Preload by replaying into the shared DB via core.Load.
		f, err := os.Open(*dbPath)
		if err != nil {
			log.Fatalf("strg-server: %v", err)
		}
		loaded, err := server.NewFromReader(f, cfg)
		f.Close()
		if err != nil {
			log.Fatalf("strg-server: loading %s: %v", *dbPath, err)
		}
		srv = loaded
		st := srv.DB().Stats()
		fmt.Printf("loaded %s: %d OGs in %d clusters\n", *dbPath, st.OGs, st.Clusters)
	}
	fmt.Printf("strg-server listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
