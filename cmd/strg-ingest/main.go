// Command strg-ingest generates a surveillance-style stream, runs it
// through the full STRG pipeline into an STRG-Index, prints the resulting
// statistics (including the Section 5.4 size comparison) and optionally
// persists the database for strg-query.
//
// Usage:
//
//	strg-ingest -profile Traffic1 -objects 60 -seed 1 -out db.gob
//	strg-ingest -in segment.json -out db.gob     # external segmented video
package main

import (
	"flag"
	"fmt"
	"os"

	"strgindex/internal/core"
	"strgindex/internal/video"
)

func main() {
	profile := flag.String("profile", "Lab2", "stream profile (Lab1, Lab2, Traffic1, Traffic2)")
	objects := flag.Int("objects", 24, "number of moving objects to generate (0 = profile default)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "write the ingested database to this file (gob)")
	in := flag.String("in", "", "ingest this JSON segment file (see video.ReadJSON) instead of generating a stream")
	workers := flag.Int("workers", 0, "worker budget for the parallel pipeline (0 = one per CPU, 1 = sequential); the resulting database is identical at every setting")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Concurrency = *workers

	if *in != "" {
		f, err := os.Open(*in)
		fail(err)
		seg, err := video.ReadJSON(f)
		fail(err)
		fail(f.Close())
		db := core.Open(cfg)
		st, err := db.IngestSegment("external", seg)
		fail(err)
		fmt.Printf("%s: %d frames, %d temporal edges, %d OGs, %d BG nodes\n",
			seg.Name, st.Frames, st.TemporalEdges, st.OGs, st.BGNodes)
		if *out != "" {
			// Atomic: temp file + fsync + rename, so a crash mid-save can
			// never leave a half-written database at *out.
			fail(db.SaveFile(nil, *out))
			fmt.Printf("saved database to %s\n", *out)
		}
		return
	}

	var prof video.StreamProfile
	found := false
	for _, p := range video.StreamProfiles() {
		if p.Name == *profile {
			prof, found = p, true
		}
	}
	if !found {
		fail(fmt.Errorf("unknown profile %q", *profile))
	}
	if *objects > 0 {
		prof.NumObjects = *objects
	}

	stream, err := video.GenerateStream(prof, *seed)
	fail(err)
	fmt.Printf("generated %s: %d segments, %d objects\n", prof.Name, len(stream.Segments), stream.NumObjects())

	db := core.Open(cfg)
	for i, seg := range stream.Segments {
		st, err := db.IngestSegment(prof.Name, seg)
		fail(err)
		fmt.Printf("  %s: %d frames, %d temporal edges, %d OGs, %d BG nodes\n",
			seg.Name, st.Frames, st.TemporalEdges, st.OGs, st.BGNodes)
		_ = i
	}

	s := db.Stats()
	fmt.Printf("\ndatabase: %d segments, %d OGs, %d roots, %d clusters\n",
		s.Segments, s.OGs, s.Roots, s.Clusters)
	fmt.Printf("sizes: raw STRG %s | decomposed STRG (Eq.9) %s | STRG-Index (Eq.10) %s (%.1fx smaller)\n",
		mb(s.RawSTRGBytes), mb(s.STRGBytes), mb(s.IndexBytes),
		float64(s.STRGBytes)/float64(s.IndexBytes))

	if *out != "" {
		fail(db.SaveFile(nil, *out))
		fmt.Printf("saved database to %s\n", *out)
	}
}

func mb(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "strg-ingest: %v\n", err)
		os.Exit(1)
	}
}
