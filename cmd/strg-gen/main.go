// Command strg-gen emits synthetic datasets as JSON: either the 48-pattern
// trajectory data of Section 6.1 (-kind synth) or a full segmented video
// stream (-kind stream).
//
// Usage:
//
//	strg-gen -kind synth  -per 10 -noise 0.10 -seed 1 > synth.json
//	strg-gen -kind stream -profile Lab2 -objects 40 -seed 1 > stream.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"strgindex/internal/synth"
	"strgindex/internal/video"
)

func main() {
	kind := flag.String("kind", "synth", "dataset kind: synth or stream")
	per := flag.Int("per", 10, "synth: items per pattern")
	noise := flag.Float64("noise", 0.10, "synth: noise fraction (0..1)")
	patterns := flag.Int("patterns", 48, "synth: number of patterns (1..48)")
	profile := flag.String("profile", "Lab1", "stream: profile name (Lab1, Lab2, Traffic1, Traffic2)")
	objects := flag.Int("objects", 0, "stream: override the object count (0 = profile default)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	switch *kind {
	case "synth":
		ds, err := synth.Generate(synth.Config{
			PerPattern:  *per,
			NoisePct:    *noise,
			NumPatterns: *patterns,
			Seed:        *seed,
		})
		fail(err)
		type item struct {
			Label   int         `json:"label"`
			Pattern string      `json:"pattern"`
			Samples [][]float64 `json:"samples"`
		}
		out := make([]item, ds.Len())
		for i := range ds.Items {
			samples := make([][]float64, len(ds.Items[i]))
			for j, v := range ds.Items[i] {
				samples[j] = []float64(v)
			}
			out[i] = item{
				Label:   ds.Labels[i],
				Pattern: ds.Patterns[ds.Labels[i]].Name,
				Samples: samples,
			}
		}
		fail(enc.Encode(out))

	case "stream":
		p, ok := findProfile(*profile)
		if !ok {
			fail(fmt.Errorf("unknown profile %q", *profile))
		}
		if *objects > 0 {
			p.NumObjects = *objects
		}
		stream, err := video.GenerateStream(p, *seed)
		fail(err)
		fail(enc.Encode(stream))

	default:
		fail(fmt.Errorf("unknown kind %q (want synth or stream)", *kind))
	}
}

func findProfile(name string) (video.StreamProfile, bool) {
	for _, p := range video.StreamProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return video.StreamProfile{}, false
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "strg-gen: %v\n", err)
		os.Exit(1)
	}
}
