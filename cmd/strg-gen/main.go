// Command strg-gen emits synthetic datasets as JSON: the 48-pattern
// trajectory data of Section 6.1 (-kind synth), a full segmented video
// stream (-kind stream), or the same stream flattened to the newline-
// delimited frame protocol of the live-feed API (-kind feed).
//
// Usage:
//
//	strg-gen -kind synth  -per 10 -noise 0.10 -seed 1 > synth.json
//	strg-gen -kind stream -profile Lab2 -objects 40 -seed 1 > stream.json
//	strg-gen -kind feed   -profile Lab1 -seed 1 |
//	    curl -sS --data-binary @- http://localhost:8080/v1/feeds/cam0/frames
//
// The feed output is one JSON value per line: a {"meta": ...} header
// carrying the frame geometry, then every frame of the stream with a
// contiguous feed-global index — exactly what POST /v1/feeds/{id}/frames
// accepts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"strgindex/internal/synth"
	"strgindex/internal/video"
)

func main() {
	kind := flag.String("kind", "synth", "dataset kind: synth or stream")
	per := flag.Int("per", 10, "synth: items per pattern")
	noise := flag.Float64("noise", 0.10, "synth: noise fraction (0..1)")
	patterns := flag.Int("patterns", 48, "synth: number of patterns (1..48)")
	profile := flag.String("profile", "Lab1", "stream: profile name (Lab1, Lab2, Traffic1, Traffic2)")
	objects := flag.Int("objects", 0, "stream: override the object count (0 = profile default)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	switch *kind {
	case "synth":
		ds, err := synth.Generate(synth.Config{
			PerPattern:  *per,
			NoisePct:    *noise,
			NumPatterns: *patterns,
			Seed:        *seed,
		})
		fail(err)
		type item struct {
			Label   int         `json:"label"`
			Pattern string      `json:"pattern"`
			Samples [][]float64 `json:"samples"`
		}
		out := make([]item, ds.Len())
		for i := range ds.Items {
			samples := make([][]float64, len(ds.Items[i]))
			for j, v := range ds.Items[i] {
				samples[j] = []float64(v)
			}
			out[i] = item{
				Label:   ds.Labels[i],
				Pattern: ds.Patterns[ds.Labels[i]].Name,
				Samples: samples,
			}
		}
		fail(enc.Encode(out))

	case "stream":
		p, ok := findProfile(*profile)
		if !ok {
			fail(fmt.Errorf("unknown profile %q", *profile))
		}
		if *objects > 0 {
			p.NumObjects = *objects
		}
		stream, err := video.GenerateStream(p, *seed)
		fail(err)
		fail(enc.Encode(stream))

	case "feed":
		p, ok := findProfile(*profile)
		if !ok {
			fail(fmt.Errorf("unknown profile %q", *profile))
		}
		if *objects > 0 {
			p.NumObjects = *objects
		}
		stream, err := video.GenerateStream(p, *seed)
		fail(err)
		// NDJSON: one compact value per line (the indented encoder would
		// still parse, but one-line records are the feed protocol's idiom).
		nd := json.NewEncoder(os.Stdout)
		first := stream.Segments[0]
		fail(nd.Encode(map[string]any{"meta": map[string]float64{
			"width": first.Width, "height": first.Height, "fps": first.FPS,
		}}))
		next := 0
		for _, seg := range stream.Segments {
			for _, f := range seg.Frames {
				f.Index = next
				next++
				fail(nd.Encode(&f))
			}
		}

	default:
		fail(fmt.Errorf("unknown kind %q (want synth, stream or feed)", *kind))
	}
}

func findProfile(name string) (video.StreamProfile, bool) {
	for _, p := range video.StreamProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return video.StreamProfile{}, false
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "strg-gen: %v\n", err)
		os.Exit(1)
	}
}
