// Command strg-query runs k-NN and range queries against a database
// persisted by strg-ingest.
//
// The query trajectory is given as semicolon-separated x,y samples:
//
//	strg-query -db db.gob -traj "20,120; 160,120; 300,120" -k 5
//	strg-query -db db.gob -traj "160,10; 160,230" -range 400
//	strg-query -db db.gob -traj "..." -k 5 -exact
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"strgindex/internal/core"
	"strgindex/internal/dist"
)

func main() {
	dbPath := flag.String("db", "", "database file written by strg-ingest (required)")
	traj := flag.String("traj", "", "query trajectory: \"x,y; x,y; ...\" (required)")
	k := flag.Int("k", 5, "number of nearest neighbors")
	radius := flag.Float64("range", 0, "if positive, run a range query with this radius instead of k-NN")
	exact := flag.Bool("exact", false, "use the exact all-cluster search instead of Algorithm 3")
	samples := flag.Int("samples", 16, "resample the query trajectory to this many samples (0 = use waypoints as-is); EGED_M penalizes length differences, so queries should be about as long as indexed OGs")
	flag.Parse()

	if *dbPath == "" || *traj == "" {
		flag.Usage()
		os.Exit(2)
	}
	seq, err := parseTrajectory(*traj)
	fail(err)
	if *samples > 0 && len(seq) > 1 {
		seq = dist.Resample(seq, *samples)
	}

	f, err := os.Open(*dbPath)
	fail(err)
	db, err := core.Load(f, core.DefaultConfig())
	fail(err)
	fail(f.Close())

	s := db.Stats()
	fmt.Printf("loaded database: %d OGs in %d clusters under %d backgrounds\n\n", s.OGs, s.Clusters, s.Roots)

	var matches []core.Match
	switch {
	case *radius > 0:
		matches = db.QueryRange(seq, *radius)
		fmt.Printf("range query (radius %.1f): %d hits\n", *radius, len(matches))
	case *exact:
		matches = db.QueryTrajectoryExact(seq, *k)
		fmt.Printf("exact %d-NN:\n", *k)
	default:
		matches = db.QueryTrajectory(seq, *k)
		fmt.Printf("%d-NN (Algorithm 3):\n", *k)
	}
	for i, m := range matches {
		fmt.Printf("%3d. dist %8.2f  og %-4d %-28s label=%s\n",
			i+1, m.Distance, m.Record.OGID, m.Record.Clip, m.Record.Label)
	}
}

// parseTrajectory parses "x,y; x,y; ..." into a 2-D sequence.
func parseTrajectory(s string) (dist.Sequence, error) {
	var seq dist.Sequence
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		xy := strings.Split(part, ",")
		if len(xy) != 2 {
			return nil, fmt.Errorf("bad sample %q (want x,y)", part)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(xy[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad x in %q: %v", part, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(xy[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad y in %q: %v", part, err)
		}
		seq = append(seq, dist.Vec{x, y})
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("empty trajectory")
	}
	return seq, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "strg-query: %v\n", err)
		os.Exit(1)
	}
}
