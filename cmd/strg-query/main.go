// Command strg-query runs k-NN, range and declarative queries against a
// database persisted by strg-ingest.
//
// The query trajectory is given as semicolon-separated x,y samples:
//
//	strg-query -db db.gob -traj "20,120; 160,120; 300,120" -k 5
//	strg-query -db db.gob -traj "160,10; 160,230" -range 400
//	strg-query -db db.gob -traj "..." -k 5 -exact
//
// A declarative query is one JSON DSL document (the same language the
// server's POST /v1/query accepts), inline or from a file ("-" = stdin):
//
//	strg-query -db db.gob -query '{"where":{"passes_through":{"x0":100,"y0":0,"x1":200,"y1":240}}}'
//	strg-query -db db.gob -query-file q.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"strgindex/internal/core"
	"strgindex/internal/dist"
	"strgindex/internal/index"
	"strgindex/internal/query"
)

func main() {
	dbPath := flag.String("db", "", "database file written by strg-ingest (required)")
	traj := flag.String("traj", "", "query trajectory: \"x,y; x,y; ...\"")
	k := flag.Int("k", 5, "number of nearest neighbors")
	radius := flag.Float64("range", 0, "if positive, run a range query with this radius instead of k-NN")
	exact := flag.Bool("exact", false, "use the exact all-cluster search instead of Algorithm 3")
	approx := flag.Bool("approx", false, "answer the k-NN through the approximate tier (IVF candidates + exact rerank); builds the tier at load")
	nprobe := flag.Int("nprobe", 0, "IVF lists to probe with -approx (0 = default)")
	samples := flag.Int("samples", 16, "resample the query trajectory to this many samples (0 = use waypoints as-is); EGED_M penalizes length differences, so queries should be about as long as indexed OGs")
	dslInline := flag.String("query", "", "declarative query as an inline JSON DSL document")
	dslFile := flag.String("query-file", "", "declarative query from a JSON file (\"-\" = stdin)")
	flag.Parse()

	if *dbPath == "" || (*traj == "" && *dslInline == "" && *dslFile == "") {
		flag.Usage()
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.Approx.Enabled = *approx
	f, err := os.Open(*dbPath)
	fail(err)
	db, err := core.Load(f, cfg)
	fail(err)
	fail(f.Close())

	s := db.Stats()
	fmt.Printf("loaded database: %d OGs in %d clusters under %d backgrounds\n\n", s.OGs, s.Clusters, s.Roots)

	if *dslInline != "" || *dslFile != "" {
		runDSL(db, *dslInline, *dslFile)
		return
	}

	seq, err := parseTrajectory(*traj)
	fail(err)
	if *samples > 0 && len(seq) > 1 {
		seq = dist.Resample(seq, *samples)
	}

	var matches []core.Match
	switch {
	case *radius > 0:
		matches = db.QueryRange(seq, *radius)
		fmt.Printf("range query (radius %.1f): %d hits\n", *radius, len(matches))
	case *approx:
		var st index.SearchStats
		var info *core.ApproxInfo
		matches, st, info, err = db.QueryTrajectoryApproxStatsCtx(context.Background(), seq, *k, *nprobe)
		fail(err)
		fmt.Printf("approximate %d-NN: probed %d/%d lists, reranked %d candidates (recall proxy %.2f, %d DP evals)\n",
			*k, info.Probed, info.Lists, info.Candidates, info.RecallProxy, st.DPEvaluated)
	case *exact:
		matches = db.QueryTrajectoryExact(seq, *k)
		fmt.Printf("exact %d-NN:\n", *k)
	default:
		matches = db.QueryTrajectory(seq, *k)
		fmt.Printf("%d-NN (Algorithm 3):\n", *k)
	}
	printMatches(matches)
}

// runDSL parses, plans and executes one declarative query, then reports
// the plan and its per-stage accounting alongside the matches.
func runDSL(db *core.VideoDB, inline, file string) {
	doc := []byte(inline)
	if file != "" {
		if inline != "" {
			fail(fmt.Errorf("-query and -query-file are mutually exclusive"))
		}
		var err error
		if file == "-" {
			doc, err = io.ReadAll(os.Stdin)
		} else {
			doc, err = os.ReadFile(file)
		}
		fail(err)
	}
	q, err := query.Parse(doc)
	fail(err)
	res, err := db.QueryComposed(q)
	fail(err)

	fmt.Printf("plan: %s", res.Plan.Strategy)
	if res.Plan.ProbeSource != "" {
		fmt.Printf(" (probe %s, est. %d candidates)", res.Plan.ProbeSource, res.Plan.EstCandidates)
	}
	if len(res.Plan.Order) > 0 {
		fmt.Printf("  order: %s", strings.Join(res.Plan.Order, " > "))
	}
	fmt.Println()
	for _, st := range res.Stages {
		fmt.Printf("  stage %-16s in %6d  out %6d  (%s)\n", st.Name, st.In, st.Out, st.Duration.Round(10*time.Microsecond))
	}
	if res.Truncated {
		fmt.Printf("%d matches (of %d; truncated at limit %d):\n", len(res.Matches), res.Total, res.Limit)
	} else {
		fmt.Printf("%d matches:\n", len(res.Matches))
	}
	printMatches(res.Matches)
}

func printMatches(matches []core.Match) {
	for i, m := range matches {
		fmt.Printf("%3d. dist %8.2f  og %-4d %-28s label=%s\n",
			i+1, m.Distance, m.Record.OGID, m.Record.Clip, m.Record.Label)
	}
}

// parseTrajectory parses "x,y; x,y; ..." into a 2-D sequence.
func parseTrajectory(s string) (dist.Sequence, error) {
	var seq dist.Sequence
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		xy := strings.Split(part, ",")
		if len(xy) != 2 {
			return nil, fmt.Errorf("bad sample %q (want x,y)", part)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(xy[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad x in %q: %v", part, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(xy[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad y in %q: %v", part, err)
		}
		seq = append(seq, dist.Vec{x, y})
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("empty trajectory")
	}
	return seq, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "strg-query: %v\n", err)
		os.Exit(1)
	}
}
