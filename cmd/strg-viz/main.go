// Command strg-viz renders what the pipeline sees.
//
//	strg-viz -mode rag  -frames 3 > rags.dot   # RAGs as Graphviz DOT (neato -n)
//	strg-viz -mode traj -objects 24 > traj.svg # extracted OGs as SVG, colored by cluster
package main

import (
	"flag"
	"fmt"
	"os"

	"strgindex/internal/cluster"
	"strgindex/internal/dist"
	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/rag"
	"strgindex/internal/render"
	"strgindex/internal/strg"
	"strgindex/internal/video"
)

func main() {
	mode := flag.String("mode", "rag", "rag (DOT per frame) or traj (SVG of clustered trajectories)")
	frames := flag.Int("frames", 1, "rag: number of frames to render")
	objects := flag.Int("objects", 24, "traj: number of objects to generate")
	seed := flag.Int64("seed", 1, "scene seed")
	jitter := flag.Float64("jitter", 0.8, "segmentation jitter")
	flag.Parse()

	if *mode == "traj" {
		renderTrajectories(*objects, *seed)
		return
	}

	seg, err := video.Generate(video.SceneConfig{
		Name: "viz", Width: 320, Height: 240, FPS: 12, Frames: *frames,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: *jitter, Seed: *seed,
		Objects: []video.ObjectSpec{{
			Label: "walker",
			Parts: []video.PartSpec{
				{Offset: geom.Vec(0, -16), Size: 100, Color: graph.Color{R: 0.85, G: 0.68, B: 0.55}},
				{Offset: geom.Vec(0, 0), Size: 350, Color: graph.Color{R: 0.8, G: 0.2, B: 0.2}},
				{Offset: geom.Vec(0, 17), Size: 250, Color: graph.Color{R: 0.2, G: 0.22, B: 0.28}},
			},
			Path:  []geom.Point{geom.Pt(30, 120), geom.Pt(290, 120)},
			Start: 0, End: *frames,
		}},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "strg-viz: %v\n", err)
		os.Exit(1)
	}
	base := graph.NodeID(0)
	for i, f := range seg.Frames {
		g := rag.Build(f, rag.DefaultConfig(), base)
		base += graph.NodeID(len(f.Regions))
		if err := g.WriteDOT(os.Stdout, fmt.Sprintf("frame%03d", i)); err != nil {
			fmt.Fprintf(os.Stderr, "strg-viz: %v\n", err)
			os.Exit(1)
		}
	}
}

// renderTrajectories generates a lab stream, extracts its OGs, clusters
// them and writes an SVG colored by cluster.
func renderTrajectories(objects int, seed int64) {
	p := video.StreamProfile{
		Name: "viz", Kind: video.KindLab,
		NumObjects: objects, SegmentFrames: 24, ObjectsPerSegment: 2,
	}
	stream, err := video.GenerateStream(p, seed)
	fail(err)
	cfg := strg.DefaultConfig()
	var ogs []*strg.OG
	for _, seg := range stream.Segments {
		s, err := strg.Build(seg, cfg)
		fail(err)
		ogs = append(ogs, s.Decompose(cfg).OGs...)
	}
	if len(ogs) == 0 {
		fail(fmt.Errorf("no object graphs extracted"))
	}
	seqs := make([]dist.Sequence, len(ogs))
	for i, og := range ogs {
		seqs[i] = og.Sequence()
	}
	k := 8
	if k > len(seqs) {
		k = len(seqs)
	}
	res, err := cluster.EM(seqs, cluster.Config{K: k, Seed: seed})
	fail(err)
	fail(render.SVG(os.Stdout, ogs, render.Options{
		Clusters: res.Assignments,
		Labels:   false,
	}))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "strg-viz: %v\n", err)
		os.Exit(1)
	}
}
