// Command strg-bench regenerates every table and figure of the paper's
// evaluation section and prints them as aligned text tables.
//
// Usage:
//
//	strg-bench [-scale quick|full] [-only table1,fig5,fig6,fig7,fig8,table2] [-workers N]
//	strg-bench -grid internal/experiments/grids/approx-1m.json [-grid-out BENCH_approx.json]
//
// The quick scale (default) runs in tens of seconds; full approaches the
// paper's magnitudes and takes minutes.
//
// With -grid, the command instead runs the approximate-tier experiment
// grid described by the JSON spec: bulk-load a synthetic corpus with the
// IVF tier on, establish exact ground truth, sweep the spec's probe
// widths, and print the recall/latency table. -grid-out additionally
// writes the measurements as benchjson points (the format benchjson
// -check enforces floors on).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"strgindex/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	onlyFlag := flag.String("only", "", "comma-separated subset: table1,fig5,fig6,fig7,fig8,table2,ablations")
	workers := flag.Int("workers", 0, "worker budget for the parallel distance engine (0 = one per CPU, 1 = sequential); results are identical at every setting")
	gridFlag := flag.String("grid", "", "run the approximate-tier experiment grid from this JSON spec instead of the paper suite")
	gridOut := flag.String("grid-out", "", "with -grid: also write the measurements as benchjson points to this file")
	flag.Parse()

	if *gridFlag != "" {
		spec, err := experiments.LoadApproxGridSpec(*gridFlag)
		fail(err)
		res, err := experiments.ApproxGrid(spec, func(format string, args ...any) {
			fmt.Printf("[grid] "+format+"\n", args...)
		})
		fail(err)
		fmt.Println()
		fmt.Println(res.Render())
		if *gridOut != "" {
			fail(res.WriteBenchJSON(*gridOut))
			fmt.Printf("wrote %s\n", *gridOut)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.QuickScale()
	case "full":
		scale = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "strg-bench: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}
	scale.Workers = *workers

	want := map[string]bool{}
	if *onlyFlag != "" {
		for _, name := range strings.Split(*onlyFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	run := func(name string) bool { return len(want) == 0 || want[name] }

	start := time.Now()
	fmt.Printf("STRG-Index experiment suite (scale=%s)\n\n", *scaleFlag)

	var streams []*experiments.StreamData
	needStreams := run("table1") || run("fig8") || run("table2")
	if needStreams {
		var err error
		step := time.Now()
		streams, err = experiments.IngestStreams(scale)
		fail(err)
		fmt.Printf("[ingested 4 streams through the full pipeline in %v]\n\n", time.Since(step).Round(time.Millisecond))
	}

	if run("table1") {
		fmt.Println(experiments.Table1(streams).Render())
	}

	var grid *experiments.Fig5Result
	if run("fig5") || run("fig6") {
		var err error
		grid, err = experiments.Figure5(scale)
		fail(err)
	}
	if run("fig5") {
		fmt.Println(grid.RenderPanels())
	}
	if run("fig6") {
		fig6, err := experiments.Figure6(scale, grid)
		fail(err)
		fmt.Println(fig6.Render())
		fmt.Println()
	}
	if run("fig7") {
		fig7, err := experiments.Figure7(scale)
		fail(err)
		fmt.Println(fig7.Render())
		fmt.Println()
	}

	var fig8 *experiments.Fig8Result
	if run("fig8") || run("table2") {
		var err error
		fig8, err = experiments.Figure8(streams, scale)
		fail(err)
	}
	if run("fig8") {
		fmt.Println(fig8.Render())
	}
	if run("table2") {
		t2, err := experiments.Table2(streams, fig8, scale)
		fail(err)
		fmt.Println(t2.Render())
	}

	if run("ablations") {
		abl, err := experiments.Ablations(scale)
		fail(err)
		fmt.Println(abl.Render())
	}

	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "strg-bench: %v\n", err)
		os.Exit(1)
	}
}
